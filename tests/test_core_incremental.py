"""Tests for the incremental/online ingest subsystem (repro.core.incremental)."""

import numpy as np
import pytest

from repro.core.incremental import (
    IncrementalRock,
    IngestResult,
    validate_refresh_threshold,
)
from repro.core.labeling import StreamingLabeler
from repro.core.links import cross_cluster_links, links_from_neighbors
from repro.core.neighbors import compute_neighbors
from repro.core.pipeline import RockPipeline
from repro.core.rock import RockClustering
from repro.datasets.market_basket import generate_market_baskets
from repro.errors import ConfigurationError, DataValidationError
from repro.similarity.base import SetSimilarity
from repro.similarity.jaccard import DiceSimilarity


def bootstrapped_session(transactions, n_clusters=2, theta=0.3, rng=0, **kwargs):
    """Cluster ``transactions`` and bootstrap a session on the result."""
    model = RockClustering(n_clusters=n_clusters, theta=theta).fit(transactions)
    session = IncrementalRock(
        n_clusters=n_clusters, theta=theta, rng=rng, **kwargs
    )
    session.bootstrap(transactions, model.clusters_)
    return session


def assert_live_state_consistent(session):
    """Invariants of the maintained live state vs a from-scratch rebuild."""
    points = session.live_points
    graph = compute_neighbors(points, theta=session.theta, measure=session.measure)
    assert (session.adjacency_ != graph.adjacency).nnz == 0
    fresh_links = links_from_neighbors(
        graph, include_self=session.include_self_links
    )
    assert (session.links_ != fresh_links).nnz == 0

    # Clusters partition the live points.
    members = sorted(
        index for cluster in session.live_clusters() for index in cluster
    )
    assert members == list(range(len(points)))

    # Cluster-level cross-link stores are symmetric and match the fold of
    # the point-level link matrix; the lazy pair heap carries a current
    # entry (matching count stamp) for every live cross-cluster pair.
    current_entries = {
        (min(left, right), max(left, right), count)
        for _neg, _seq, left, right, count in session._pair_heap
        if left in session._members and right in session._members
    }
    for cluster_id, row in session._cluster_links.items():
        assert cluster_id in session._members
        for other, count in row.items():
            assert session._cluster_links[other][cluster_id] == count
            assert count == cross_cluster_links(
                session.links_,
                session._members[cluster_id],
                session._members[other],
            )
            assert (
                min(cluster_id, other),
                max(cluster_id, other),
                count,
            ) in current_entries


class TestValidation:
    def test_refresh_threshold_none_passthrough(self):
        assert validate_refresh_threshold(None) is None

    @pytest.mark.parametrize("value", [0.0, -0.5, float("nan")])
    def test_invalid_refresh_threshold_rejected(self, value):
        with pytest.raises(ConfigurationError):
            validate_refresh_threshold(value)

    def test_invalid_threshold_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            IncrementalRock(n_clusters=2, refresh_threshold=0.0)

    def test_ingest_before_bootstrap_rejected(self):
        session = IncrementalRock(n_clusters=2)
        with pytest.raises(ConfigurationError):
            session.ingest([frozenset({1})])

    def test_bootstrap_requires_clusters(self):
        with pytest.raises(DataValidationError):
            IncrementalRock(n_clusters=2).bootstrap([frozenset({1})], [])

    def test_bootstrap_rejects_out_of_range_member(self):
        with pytest.raises(DataValidationError):
            IncrementalRock(n_clusters=2).bootstrap([frozenset({1})], [(0, 5)])

    def test_bootstrap_rejects_overlapping_clusters(self):
        with pytest.raises(DataValidationError):
            IncrementalRock(n_clusters=2).bootstrap(
                [frozenset({1}), frozenset({2})], [(0, 1), (1,)]
            )


class TestIngestLabels:
    def test_labels_match_streaming_labeler(self, two_group_transactions):
        session = bootstrapped_session(two_group_transactions)
        batch = [frozenset({1, 2, 5}), frozenset({7, 8, 11}), frozenset({99})]
        labeler = StreamingLabeler(
            two_group_transactions,
            RockClustering(n_clusters=2, theta=0.3)
            .fit(two_group_transactions)
            .clusters_,
            theta=0.3,
            rng=np.random.default_rng(0),
        )
        expected = labeler.label_batch(batch)
        result = session.ingest(batch)
        assert isinstance(result, IngestResult)
        np.testing.assert_array_equal(result.labels, expected.labels)
        assert result.n_points == 3
        assert result.label_space == 0
        assert not result.refreshed

    def test_batch_split_never_changes_labels(self, two_group_transactions):
        batch = [
            frozenset({1, 2, 5}),
            frozenset({7, 8, 11}),
            frozenset({1, 3}),
            frozenset({7, 10}),
        ]
        one_shot = bootstrapped_session(two_group_transactions)
        split = bootstrapped_session(two_group_transactions)
        whole = one_shot.ingest(batch).labels
        parts = np.concatenate(
            [split.ingest(batch[:1]).labels, split.ingest(batch[1:]).labels]
        )
        np.testing.assert_array_equal(whole, parts)

    def test_empty_batch_is_a_no_op(self, two_group_transactions):
        session = bootstrapped_session(two_group_transactions)
        before = session.n_points
        result = session.ingest([])
        assert result.n_points == 0
        assert result.labels.size == 0
        assert session.n_points == before


class TestLiveStateInvariants:
    def test_invariants_hold_after_every_ingest(self, two_group_transactions):
        session = bootstrapped_session(two_group_transactions)
        batches = [
            [frozenset({1, 2, 5}), frozenset({7, 8, 11})],
            [frozenset({1, 2, 3}), frozenset({50, 51})],
            [frozenset(), frozenset({50, 52}), frozenset({1, 4})],
        ]
        for batch in batches:
            session.ingest(batch)
            assert_live_state_consistent(session)
        assert session.n_points == len(two_group_transactions) + 7
        assert session.n_ingested == 7

    def test_invariants_hold_for_non_vectorizable_measure(
        self, two_group_transactions
    ):
        class SimpleMatching(SetSimilarity):
            name = "pair-only"

            def __call__(self, left, right):
                if not left and not right:
                    return 1.0
                union = len(left | right)
                return len(left & right) / union if union else 1.0

        session = bootstrapped_session(
            two_group_transactions, measure=SimpleMatching()
        )
        session.ingest([frozenset({1, 2, 5}), frozenset({7, 8, 11})])
        assert_live_state_consistent(session)

    def test_invariants_hold_at_theta_zero(self, two_group_transactions):
        session = bootstrapped_session(two_group_transactions, theta=0.0)
        session.ingest([frozenset({99}), frozenset()])
        assert_live_state_consistent(session)

    def test_invariants_hold_for_dice_measure(self, two_group_transactions):
        session = bootstrapped_session(
            two_group_transactions, measure=DiceSimilarity(), theta=0.5
        )
        session.ingest([frozenset({1, 2, 5}), frozenset({7, 8, 11})])
        assert_live_state_consistent(session)

    def test_new_items_extend_the_live_index(self, two_group_transactions):
        session = bootstrapped_session(two_group_transactions)
        # Both points live entirely on items the bootstrap never saw; they
        # must still become neighbours of each other in the live graph.
        session.ingest([frozenset({100, 101, 102}), frozenset({100, 101, 103})])
        assert_live_state_consistent(session)
        n = session.n_points
        assert session.adjacency_[n - 2, n - 1]

    def test_singletons_without_links_stay_outliers(self, two_group_transactions):
        session = bootstrapped_session(two_group_transactions)
        before = len(session.live_clusters())
        session.ingest([frozenset({777})])
        clusters = session.live_clusters()
        assert len(clusters) == before + 1
        assert (session.n_points - 1,) in clusters

    def test_linked_points_merge_into_their_cluster(self, two_group_transactions):
        session = bootstrapped_session(two_group_transactions)
        session.ingest([frozenset({1, 2, 3})])
        clusters = session.live_clusters()
        new_point = session.n_points - 1
        # The new point joins the {0, 1, 2} group instead of dangling.
        joined = next(c for c in clusters if new_point in c)
        assert set(joined) >= {0, 1, 2}


class TestRefresh:
    def test_refresh_triggers_on_drift(self, two_group_transactions):
        session = bootstrapped_session(
            two_group_transactions, refresh_threshold=0.4
        )
        result = session.ingest([frozenset({1, 2, 5}), frozenset({7, 8, 11})])
        assert result.drift == pytest.approx(2 / 6)
        assert not result.refreshed
        result = session.ingest([frozenset({1, 3, 4})])
        assert result.drift == pytest.approx(3 / 6)
        assert result.refreshed
        assert session.n_refreshes == 1
        assert session.drift == 0.0
        assert_live_state_consistent(session)

    def test_labels_after_refresh_use_the_new_space(self, two_group_transactions):
        session = bootstrapped_session(
            two_group_transactions, refresh_threshold=0.1
        )
        first = session.ingest([frozenset({1, 2, 3})])
        assert first.refreshed and first.label_space == 0
        second = session.ingest([frozenset({1, 2, 3})])
        assert second.label_space == 1
        # The refreshed clustering absorbed the first inserted point, so
        # the labeler now scores against the refreshed clusters.
        assert second.labels[0] >= 0

    def test_manual_refresh_rebinds_the_labeler(self, two_group_transactions):
        session = bootstrapped_session(two_group_transactions)
        session.ingest([frozenset({1, 2, 5})])
        session.refresh()
        assert session.n_refreshes == 1
        assert session.n_labeler_clusters == len(session.live_clusters())
        assert_live_state_consistent(session)


class TestRunOnlinePipeline:
    @pytest.fixture(scope="class")
    def baskets(self):
        return generate_market_baskets(
            n_transactions=260, rng=2, n_clusters=3
        ).transactions

    @pytest.mark.parametrize("batch_size", [17, 64, 1024])
    def test_run_online_matches_run_streaming(self, baskets, batch_size):
        streamed = RockPipeline(
            n_clusters=3, theta=0.35, sample_size=90, rng=11
        ).run_streaming(baskets, batch_size=batch_size)
        online = RockPipeline(
            n_clusters=3, theta=0.35, sample_size=90, rng=11
        ).run_online(baskets, batch_size=batch_size)
        np.testing.assert_array_equal(online.labels, streamed.labels)
        assert online.clusters == streamed.clusters
        assert online.n_outliers == streamed.n_outliers
        np.testing.assert_array_equal(
            online.labeling_result.labels, streamed.labeling_result.labels
        )
        assert online.labeled_indices == streamed.labeled_indices
        assert online.parameters["online"] is True
        assert online.parameters["n_refreshes"] == 0

    def test_run_online_matches_streaming_with_pruning_and_prefilter(self, baskets):
        kwargs = dict(
            n_clusters=3,
            theta=0.35,
            sample_size=90,
            min_neighbors=1,
            min_cluster_size=3,
            labeling_fraction=0.8,
            rng=5,
        )
        streamed = RockPipeline(**kwargs).run_streaming(baskets, batch_size=32)
        online = RockPipeline(**kwargs).run_online(baskets, batch_size=32)
        np.testing.assert_array_equal(online.labels, streamed.labels)

    def test_refreshing_run_is_seed_reproducible(self, baskets):
        results = [
            RockPipeline(
                n_clusters=3, theta=0.35, sample_size=90, rng=11
            ).run_online(baskets, batch_size=32, refresh_threshold=0.5)
            for _ in range(2)
        ]
        assert results[0].parameters["n_refreshes"] >= 1
        np.testing.assert_array_equal(results[0].labels, results[1].labels)
        # The final numbering is a size-ordered partition of all points.
        sizes = [len(c) for c in results[0].clusters]
        assert sizes == sorted(sizes, reverse=True)
        covered = sorted(i for c in results[0].clusters for i in c)
        expected = [
            i for i in range(len(baskets)) if results[0].labels[i] >= 0
        ]
        assert covered == expected

    def test_session_survives_the_run_for_further_ingest(self, baskets):
        pipeline = RockPipeline(n_clusters=3, theta=0.35, sample_size=90, rng=11)
        pipeline.run_online(baskets, batch_size=64)
        session = pipeline.online_session
        assert session is not None
        assert session.n_points >= 90
        more = pipeline.ingest(baskets[:5])
        assert more.n_points == 5
        assert_live_state_consistent(session)

    def test_ingest_without_session_rejected(self):
        with pytest.raises(ConfigurationError):
            RockPipeline(n_clusters=2).ingest([frozenset({1})])

    def test_online_session_none_before_run(self):
        assert RockPipeline(n_clusters=2).online_session is None

    def test_invalid_refresh_threshold_rejected_before_clustering(self, baskets):
        with pytest.raises(ConfigurationError):
            RockPipeline(n_clusters=3, sample_size=90).run_online(
                baskets, refresh_threshold=-0.5
            )

    def test_unknown_sample_method_rejected(self, baskets):
        with pytest.raises(ConfigurationError):
            RockPipeline(n_clusters=3, sample_size=90).run_online(
                baskets, sample_method="warp"
            )

    def test_empty_source_rejected(self):
        with pytest.raises(DataValidationError):
            RockPipeline(n_clusters=2, sample_size=4).run_online(
                lambda: iter([])
            )

    def test_reservoir_sampling_runs(self, baskets):
        result = RockPipeline(
            n_clusters=3, theta=0.35, sample_size=90, rng=11
        ).run_online(baskets, batch_size=64, sample_method="reservoir")
        assert len(result.labels) == len(baskets)
        assert result.parameters["sample_method"] == "reservoir"
