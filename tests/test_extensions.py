"""Tests for the repro.extensions subpackage (QROCK and theta sweep)."""

import numpy as np
import pytest

from repro.core.neighbors import compute_neighbors
from repro.core.rock import RockClustering
from repro.errors import ConfigurationError, NotFittedError
from repro.evaluation.metrics import clustering_error
from repro.extensions.auto_theta import ThetaSweepEntry, best_theta, sweep_theta
from repro.extensions.qrock import QRock, connected_component_clusters


class TestConnectedComponentClusters:
    def test_two_components(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        labels, clusters = connected_component_clusters(graph)
        assert len(clusters) == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_isolated_points_are_singleton_components(self):
        graph = compute_neighbors([{1, 2}, {1, 2, 3}, {99}], theta=0.5)
        labels, clusters = connected_component_clusters(graph)
        assert len(clusters) == 2
        assert sorted(len(c) for c in clusters) == [1, 2]

    def test_labels_numbered_by_decreasing_size(self):
        graph = compute_neighbors([{1, 2}, {1, 2, 3}, {1, 3}, {9, 10}, {9, 10, 11}], theta=0.4)
        labels, clusters = connected_component_clusters(graph)
        assert len(clusters[0]) >= len(clusters[1])
        assert labels[0] == 0


class TestQRock:
    def test_matches_rock_when_unconstrained(self, two_group_transactions):
        # With no cluster-count constraint ROCK merges while links remain,
        # which ends exactly at the connected components.
        qrock_labels = QRock(theta=0.4).fit_predict(two_group_transactions)
        rock = RockClustering(n_clusters=1, theta=0.4).fit(two_group_transactions)
        assert rock.result_.stopped_early
        assert clustering_error(qrock_labels, rock.labels_.tolist()) == 0.0
        assert rock.n_clusters_ == len(set(qrock_labels.tolist()))

    def test_min_cluster_size_marks_outliers(self):
        transactions = [{1, 2}, {1, 2, 3}, {99, 100}]
        model = QRock(theta=0.5, min_cluster_size=2).fit(transactions)
        assert model.n_clusters_ == 1
        assert model.labels_[2] == -1

    def test_accepts_dataset_inputs(self, small_transaction_dataset):
        model = QRock(theta=0.4).fit(small_transaction_dataset)
        assert model.n_clusters_ == 2

    def test_not_fitted_errors(self):
        model = QRock(theta=0.5)
        with pytest.raises(NotFittedError):
            model.labels_
        with pytest.raises(NotFittedError):
            model.clusters_

    def test_mushroom_groups_recovered(self, mushroom_small):
        dataset, groups = mushroom_small
        model = QRock(theta=0.8, min_cluster_size=2).fit(dataset)
        labels = model.labels_
        kept = labels >= 0
        error = clustering_error(labels[kept], np.asarray(groups)[kept].tolist())
        assert error < 0.1


class TestThetaSweep:
    def test_sweep_produces_entry_per_theta(self, two_group_transactions, two_group_labels):
        entries = sweep_theta(
            two_group_transactions, n_clusters=2, thetas=[0.2, 0.4, 0.9],
            labels_true=two_group_labels,
        )
        assert len(entries) == 3
        assert all(isinstance(entry, ThetaSweepEntry) for entry in entries)
        assert [entry.theta for entry in entries] == [0.2, 0.4, 0.9]

    def test_good_theta_has_zero_error(self, two_group_transactions, two_group_labels):
        entries = sweep_theta(
            two_group_transactions, n_clusters=2, thetas=[0.4],
            labels_true=two_group_labels,
        )
        assert entries[0].error == 0.0
        assert entries[0].n_clusters == 2

    def test_extreme_theta_stops_early(self, two_group_transactions):
        entries = sweep_theta(two_group_transactions, n_clusters=1, thetas=[0.95])
        assert entries[0].stopped_early
        assert entries[0].n_clusters > 1

    def test_error_none_without_ground_truth(self, two_group_transactions):
        entries = sweep_theta(two_group_transactions, n_clusters=2, thetas=[0.4])
        assert entries[0].error is None

    def test_best_theta_prefers_lowest_error(self, two_group_transactions, two_group_labels):
        entries = sweep_theta(
            two_group_transactions, n_clusters=2, thetas=[0.1, 0.4, 0.95],
            labels_true=two_group_labels,
        )
        assert best_theta(entries) in (0.1, 0.4)

    def test_best_theta_without_ground_truth_uses_criterion(self, two_group_transactions):
        entries = sweep_theta(two_group_transactions, n_clusters=2, thetas=[0.4, 0.95])
        assert best_theta(entries) == 0.4

    def test_invalid_inputs_rejected(self, two_group_transactions):
        with pytest.raises(ConfigurationError):
            sweep_theta(two_group_transactions, n_clusters=2, thetas=[])
        with pytest.raises(ConfigurationError):
            sweep_theta(two_group_transactions, n_clusters=2, thetas=[0.4], labels_true=["a"])
        with pytest.raises(ConfigurationError):
            best_theta([])
