"""Property-based tests (hypothesis) for core data structures and invariants."""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.goodness import default_expected_links_exponent, goodness, theta_power
from repro.core.heaps import AddressableMaxHeap
from repro.core.incremental import IncrementalRock
from repro.core.labeling import StreamingLabeler
from repro.core.links import cross_cluster_links, links_from_neighbors
from repro.core.neighbors import compute_neighbors
from repro.core.rock import RockClustering
from repro.evaluation.metrics import (
    adjusted_rand_index,
    clustering_error,
    purity,
)
from repro.similarity.jaccard import DiceSimilarity, jaccard

# ----------------------------------------------------------------------- #
# Strategies
# ----------------------------------------------------------------------- #
item_sets = st.frozensets(st.integers(min_value=0, max_value=12), max_size=8)
transaction_lists = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=10), min_size=0, max_size=6),
    min_size=1,
    max_size=18,
)
thetas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


# ----------------------------------------------------------------------- #
# Similarity properties
# ----------------------------------------------------------------------- #
class TestSimilarityProperties:
    @given(left=item_sets, right=item_sets)
    def test_jaccard_bounded_and_symmetric(self, left, right):
        value = jaccard(left, right)
        assert 0.0 <= value <= 1.0
        assert value == jaccard(right, left)

    @given(items=item_sets)
    def test_jaccard_identity(self, items):
        assert jaccard(items, items) == 1.0

    @given(left=item_sets, right=item_sets)
    def test_jaccard_one_iff_equal(self, left, right):
        if jaccard(left, right) == 1.0:
            assert left == right

    @given(left=item_sets, right=item_sets)
    def test_dice_at_least_jaccard(self, left, right):
        assert DiceSimilarity()(left, right) >= jaccard(left, right) - 1e-12

    @given(left=item_sets, right=item_sets, third=item_sets)
    def test_jaccard_distance_triangle_inequality(self, left, right, third):
        # 1 - Jaccard is a metric; check the triangle inequality.
        d = lambda a, b: 1.0 - jaccard(a, b)
        assert d(left, third) <= d(left, right) + d(right, third) + 1e-9


# ----------------------------------------------------------------------- #
# Goodness properties
# ----------------------------------------------------------------------- #
class TestGoodnessProperties:
    @given(theta=thetas)
    def test_exponent_in_unit_interval(self, theta):
        value = default_expected_links_exponent(theta)
        assert 0.0 <= value <= 1.0

    @given(theta=thetas, size=st.integers(min_value=1, max_value=1000))
    def test_theta_power_at_least_linear(self, theta, size):
        # The exponent 1 + 2 f(theta) is always >= 1.
        assert theta_power(size, theta) >= size - 1e-9

    @given(
        theta=st.floats(min_value=0.0, max_value=0.99),
        links=st.integers(min_value=1, max_value=10_000),
        size_left=st.integers(min_value=1, max_value=500),
        size_right=st.integers(min_value=1, max_value=500),
    )
    def test_goodness_positive_and_monotone_in_links(self, theta, links, size_left, size_right):
        value = goodness(links, size_left, size_right, theta)
        more = goodness(links + 1, size_left, size_right, theta)
        assert value > 0
        assert more > value


# ----------------------------------------------------------------------- #
# Heap properties
# ----------------------------------------------------------------------- #
class TestHeapProperties:
    @given(priorities=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                         min_value=-1e6, max_value=1e6),
                               min_size=1, max_size=60))
    def test_pops_are_sorted(self, priorities):
        heap = AddressableMaxHeap()
        for index, priority in enumerate(priorities):
            heap.push(index, priority)
        drained = []
        while heap:
            drained.append(heap.pop()[1])
        assert drained == sorted(priorities, reverse=True)

    @given(
        priorities=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                      min_value=-100, max_value=100),
                            min_size=2, max_size=40),
        updates=st.lists(st.tuples(st.integers(min_value=0, max_value=39),
                                   st.floats(allow_nan=False, allow_infinity=False,
                                             min_value=-100, max_value=100)),
                         max_size=30),
    )
    def test_pops_sorted_after_updates(self, priorities, updates):
        heap = AddressableMaxHeap()
        current = {}
        for index, priority in enumerate(priorities):
            heap.push(index, priority)
            current[index] = priority
        for key, priority in updates:
            if key in current:
                heap.update(key, priority)
                current[key] = priority
        drained = [heap.pop()[1] for _ in range(len(current))]
        assert drained == sorted(current.values(), reverse=True)

    @given(keys=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=50))
    def test_membership_tracks_push_and_discard(self, keys):
        heap = AddressableMaxHeap()
        present = set()
        for key in keys:
            if key in present:
                heap.discard(key)
                present.discard(key)
            else:
                heap.push(key, float(key))
                present.add(key)
        assert set(heap) == present
        assert len(heap) == len(present)


# ----------------------------------------------------------------------- #
# Neighbour / link / clustering invariants
# ----------------------------------------------------------------------- #
class TestClusteringProperties:
    @settings(deadline=None, max_examples=40)
    @given(transactions=transaction_lists, theta=st.floats(min_value=0.05, max_value=0.95))
    def test_neighbor_strategies_agree(self, transactions, theta):
        brute = compute_neighbors(transactions, theta, strategy="bruteforce")
        fast = compute_neighbors(transactions, theta, strategy="vectorized")
        assert (brute.adjacency != fast.adjacency).nnz == 0

    @settings(deadline=None, max_examples=40)
    @given(transactions=transaction_lists, theta=st.floats(min_value=0.05, max_value=0.95))
    def test_link_strategies_agree(self, transactions, theta):
        graph = compute_neighbors(transactions, theta)
        by_lists = links_from_neighbors(graph, strategy="neighbor-lists")
        by_matmul = links_from_neighbors(graph, strategy="sparse-matmul")
        assert (by_lists != by_matmul).nnz == 0

    @settings(deadline=None, max_examples=30)
    @given(
        transactions=transaction_lists,
        theta=st.floats(min_value=0.1, max_value=0.9),
        n_clusters=st.integers(min_value=1, max_value=5),
    )
    def test_rock_partitions_all_points(self, transactions, theta, n_clusters):
        model = RockClustering(n_clusters=n_clusters, theta=theta).fit(transactions)
        labels = model.labels_
        assert len(labels) == len(transactions)
        assert np.all(labels >= 0)
        # Clusters partition the indices exactly.
        members = sorted(index for cluster in model.clusters_ for index in cluster)
        assert members == list(range(len(transactions)))
        # Never fewer clusters than requested unless there are fewer points.
        assert model.n_clusters_ >= min(n_clusters, len(transactions))


# ----------------------------------------------------------------------- #
# Incremental-ingest invariants
# ----------------------------------------------------------------------- #
@st.composite
def ingest_schedules(draw):
    """A bootstrap set plus a stream of new points cut into random batches.

    Returns ``(bootstrap, stream, batches)`` where ``batches`` is a
    partition of ``stream`` into contiguous non-empty batches — the
    "batched-ingest schedule" whose split must never change any label.
    """
    bootstrap = draw(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=10), max_size=6),
            min_size=3,
            max_size=10,
        )
    )
    stream = draw(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=14), max_size=6),
            min_size=1,
            max_size=10,
        )
    )
    cuts = draw(
        st.sets(st.integers(min_value=1, max_value=max(1, len(stream) - 1)))
    )
    boundaries = [0, *sorted(c for c in cuts if c < len(stream)), len(stream)]
    batches = [
        stream[start:stop]
        for start, stop in zip(boundaries, boundaries[1:])
        if stop > start
    ]
    return bootstrap, stream, batches


def _bootstrap_session(bootstrap, theta, n_clusters=2, rng=0, **kwargs):
    clusters = RockClustering(n_clusters=n_clusters, theta=theta).fit(bootstrap).clusters_
    session = IncrementalRock(n_clusters=n_clusters, theta=theta, rng=rng, **kwargs)
    session.bootstrap(bootstrap, clusters)
    return session, clusters


class TestIncrementalProperties:
    @settings(deadline=None, max_examples=30)
    @given(
        schedule=ingest_schedules(),
        theta=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_batched_ingest_equals_batch_labeling(self, schedule, theta):
        # Incremental ≡ batch: the labels of a stream are independent of
        # the ingest batch split and identical to labelling the whole
        # stream in one StreamingLabeler pass over the bootstrap clusters.
        bootstrap, stream, batches = schedule
        session, clusters = _bootstrap_session(bootstrap, theta)
        labeler = StreamingLabeler(
            bootstrap, clusters, theta=theta, rng=np.random.default_rng(0)
        )
        expected = labeler.label_batch(stream).labels
        incremental = np.concatenate(
            [session.ingest(batch).labels for batch in batches]
        )
        np.testing.assert_array_equal(incremental, expected)

    @settings(deadline=None, max_examples=30)
    @given(
        schedule=ingest_schedules(),
        theta=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_link_matrix_and_heaps_after_every_ingest(self, schedule, theta):
        # After every ingest the maintained adjacency and link matrix are
        # bit-identical to a from-scratch recomputation over the live
        # points, the clusters partition them, and the cross-link stores /
        # addressable heaps mirror the link matrix exactly.
        bootstrap, _stream, batches = schedule
        session, _clusters = _bootstrap_session(bootstrap, theta)
        for batch in batches:
            session.ingest(batch)
            graph = compute_neighbors(session.live_points, theta=theta)
            assert (session.adjacency_ != graph.adjacency).nnz == 0
            fresh = links_from_neighbors(graph)
            assert (session.links_ != fresh).nnz == 0
            members = sorted(
                index
                for cluster in session.live_clusters()
                for index in cluster
            )
            assert members == list(range(session.n_points))
            current_entries = {
                (min(left, right), max(left, right), count)
                for _neg, _seq, left, right, count in session._pair_heap
                if left in session._members and right in session._members
            }
            for cluster_id, row in session._cluster_links.items():
                for other, count in row.items():
                    assert session._cluster_links[other][cluster_id] == count
                    assert count == cross_cluster_links(
                        session.links_,
                        session._members[cluster_id],
                        session._members[other],
                    )
                    assert (
                        min(cluster_id, other),
                        max(cluster_id, other),
                        count,
                    ) in current_entries

    @settings(deadline=None, max_examples=20)
    @given(
        schedule=ingest_schedules(),
        theta=st.floats(min_value=0.1, max_value=0.9),
        refresh_threshold=st.floats(min_value=0.1, max_value=2.0),
    )
    def test_refreshing_sessions_are_seed_reproducible(
        self, schedule, theta, refresh_threshold
    ):
        # With a refresh threshold, the same schedule and seed must give
        # the same labels, label spaces and refresh points on every run.
        bootstrap, _stream, batches = schedule
        outcomes = []
        for _ in range(2):
            session, _clusters = _bootstrap_session(
                bootstrap, theta, refresh_threshold=refresh_threshold
            )
            results = [session.ingest(batch) for batch in batches]
            outcomes.append(
                (
                    [result.labels.tolist() for result in results],
                    [result.label_space for result in results],
                    [result.refreshed for result in results],
                    session.n_refreshes,
                )
            )
        assert outcomes[0] == outcomes[1]


# ----------------------------------------------------------------------- #
# Persistence: restore ≡ uninterrupted
# ----------------------------------------------------------------------- #
class TestPersistenceProperties:
    """Snapshot/restore interleaved anywhere in an ingest schedule — with or
    without an injected crash — must reproduce the uninterrupted run bit for
    bit (labels, matrices and RNG stream alike)."""

    FAULTS = (None, "snapshot.before-rename", "wal.torn-append")

    @staticmethod
    def _states_identical(left, right):
        assert (left.adjacency_ != right.adjacency_).nnz == 0
        assert (left.links_ != right.links_).nnz == 0
        assert left._members == right._members
        assert left._pair_heap == right._pair_heap
        assert left.rng.bit_generator.state == right.rng.bit_generator.state

    @settings(deadline=None, max_examples=15)
    @given(
        schedule=ingest_schedules(),
        theta=st.floats(min_value=0.1, max_value=0.9),
        data=st.data(),
    )
    def test_restore_equals_uninterrupted(self, schedule, theta, data):
        from repro.persistence import failpoints
        from repro.persistence.session import PersistentSession

        bootstrap, _stream, batches = schedule
        reference, _ = _bootstrap_session(bootstrap, theta)
        expected = [reference.ingest(batch).labels.tolist() for batch in batches]

        cut = data.draw(
            st.integers(min_value=0, max_value=len(batches)), label="cut"
        )
        fault = data.draw(st.sampled_from(self.FAULTS), label="fault")
        failpoints.reset()
        try:
            with tempfile.TemporaryDirectory() as tmp:
                session, _ = _bootstrap_session(bootstrap, theta)
                store = PersistentSession.create(tmp, session)
                observed = [
                    store.ingest(batch).labels.tolist()
                    for batch in batches[:cut]
                ]
                if fault is None:
                    store.snapshot()
                elif fault == "snapshot.before-rename":
                    with failpoints.failpoint(fault, times=1):
                        with pytest.raises(failpoints.InjectedFaultError):
                            store.snapshot()
                elif cut < len(batches):  # torn WAL append mid-ingest
                    with failpoints.failpoint(fault, times=1):
                        with pytest.raises(failpoints.InjectedFaultError):
                            store.ingest(batches[cut])
                del store  # simulated kill: no close()

                resumed = PersistentSession.resume(tmp)
                observed.extend(
                    resumed.ingest(batch).labels.tolist()
                    for batch in batches[cut:]
                )
        finally:
            failpoints.reset()
        assert observed == expected
        self._states_identical(resumed.session, reference)


# ----------------------------------------------------------------------- #
# Serving properties
# ----------------------------------------------------------------------- #
class TestServeProperties:
    """Randomised label/ingest/snapshot interleavings against an in-process
    server must reproduce the no-server ``run_online`` bit-contract: every
    served ingest ack carries exactly the labels direct ``session.ingest``
    calls over the same schedule produce, however many label reads and
    snapshots are woven between them, and a crash/restore in the middle
    changes nothing."""

    @settings(deadline=None, max_examples=15)
    @given(
        schedule=ingest_schedules(),
        theta=st.floats(min_value=0.1, max_value=0.9),
        data=st.data(),
    )
    def test_served_schedule_equals_direct_ingest(self, schedule, theta, data):
        import asyncio

        from repro.serve.client import ServeClient
        from repro.serve.server import ReproServer

        bootstrap, stream, batches = schedule
        reference, _ = _bootstrap_session(bootstrap, theta)
        expected = [
            [int(label) for label in reference.ingest(batch).labels]
            for batch in batches
        ]
        # label_only depends only on the retained labeler, never on what
        # was ingested, so one twin answers for every interleaving point.
        twin, _ = _bootstrap_session(bootstrap, theta)
        expected_labels = [int(label) for label in twin.label_only(stream)]

        # One interleaving token per slot: which read/admin traffic (if
        # any) precedes each ingest batch and the shutdown.
        interleave = data.draw(
            st.lists(
                st.sampled_from(("none", "label", "snapshot", "label+snapshot")),
                min_size=len(batches) + 1,
                max_size=len(batches) + 1,
            ),
            label="interleave",
        )
        restart_at = data.draw(
            st.integers(min_value=0, max_value=len(batches)), label="restart_at"
        )

        async def drive(client, slots):
            observed = []
            for slot, batch in slots:
                token = interleave[slot]
                if "label" in token:
                    point = stream[slot % len(stream)]
                    assert await client.label(point) == expected_labels[
                        slot % len(stream)
                    ]
                if "snapshot" in token:
                    await client.snapshot()
                if batch is not None:
                    observed.append((await client.ingest(batch))["labels"])
            return observed

        async def scenario(tmp):
            session, _ = _bootstrap_session(bootstrap, theta)
            slots = list(enumerate(batches)) + [(len(batches), None)]

            server = ReproServer.create(session, tmp)
            await server.start()
            async with await ServeClient.connect(*server.address) as client:
                observed = await drive(client, slots[:restart_at])
            # Stop without the shutdown verb, then restore from disk: the
            # second server must continue exactly where the first left off.
            await server.stop()

            resumed = ReproServer.resume(tmp)
            await resumed.start()
            async with await ServeClient.connect(*resumed.address) as client:
                observed += await drive(client, slots[restart_at:])
                await client.shutdown()
            await resumed.serve_forever()
            return observed

        with tempfile.TemporaryDirectory() as tmp:
            observed = asyncio.run(scenario(tmp))
        assert observed == expected


# ----------------------------------------------------------------------- #
# Metric properties
# ----------------------------------------------------------------------- #
class TestMetricProperties:
    label_lists = st.integers(min_value=2, max_value=40).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(min_value=0, max_value=4), min_size=n, max_size=n),
            st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n),
        )
    )

    @given(pair=label_lists)
    def test_purity_bounds_and_error_complement(self, pair):
        predicted, truth = pair
        value = purity(predicted, truth)
        assert 0.0 < value <= 1.0
        assert clustering_error(predicted, truth) == 1.0 - value

    @given(pair=label_lists)
    def test_ari_bounded_above_by_one(self, pair):
        predicted, truth = pair
        assert adjusted_rand_index(predicted, truth) <= 1.0 + 1e-9

    @given(truth=st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=40))
    def test_perfect_prediction_has_zero_error(self, truth):
        assert clustering_error(truth, truth) == 0.0
        assert adjusted_rand_index(truth, truth) >= 1.0 - 1e-9
