"""Tests for repro.core.sharding and RockPipeline.run_sharded.

The sharded pipeline carries two determinism contracts (see
docs/ARCHITECTURE.md): ``n_shards=1`` is bit-identical to the streaming
pipeline on the same data and seed, and multi-shard runs are reproducible
from the pipeline seed regardless of worker count.  The quality tests run
on the tight-cluster benchmark workload where the one-shot pipeline itself
recovers the latent groups, so an agreement floor is meaningful.
"""

import warnings

import numpy as np
import pytest

from repro.bench.engine_bench import WORKLOAD
from repro.core.pipeline import RockPipeline
from repro.core.shard_worker import ShardWorkerConfig
from repro.core.sharding import (
    ADAPTIVE_REPRESENTATIVES,
    ADAPTIVE_REPRESENTATIVES_CEILING,
    ADAPTIVE_REPRESENTATIVES_FLOOR,
    AUTO_SHARD_EXECUTOR,
    DEFAULT_SHARD_EXECUTOR,
    PROCESS_SHARD_EXECUTOR,
    SHARD_STRATEGIES,
    ShardPlan,
    adaptive_representative_bounds,
    allocate_sample_sizes,
    cluster_shards,
    merge_shard_summaries,
    resolve_shard_executor,
    stable_shard_hash,
)
from repro.data.io import write_transactions
from repro.datasets.market_basket import generate_market_baskets
from repro.errors import ConfigurationError, DataValidationError, ShardExecutionError
from repro.evaluation.metrics import adjusted_rand_index
from repro.persistence import failpoints


@pytest.fixture(scope="module")
def tight_baskets():
    """A tight-cluster basket workload the pipeline solves reliably."""
    return generate_market_baskets(n_transactions=800, rng=0, **WORKLOAD)


def _pipeline(rng=7, **overrides):
    kwargs = dict(
        n_clusters=8, theta=0.5, sample_size=300, min_cluster_size=2, rng=rng
    )
    kwargs.update(overrides)
    return RockPipeline(**kwargs)


class TestShardPlan:
    def test_round_robin_assignment(self):
        plan = ShardPlan(3)
        assert [plan.shard_of(p) for p in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_contiguous_blocks_partition_positions(self):
        plan = ShardPlan(3, "contiguous", n_points=10)
        shards = [plan.shard_of(p) for p in range(10)]
        assert shards == sorted(shards)
        assert set(shards) == {0, 1, 2}

    def test_contiguous_requires_n_points(self):
        with pytest.raises(ConfigurationError):
            ShardPlan(3, "contiguous")

    def test_hash_is_content_based_and_stable(self):
        plan = ShardPlan(4, "hash")
        basket = frozenset({"milk", "bread"})
        first = plan.shard_of(0, basket)
        assert first == plan.shard_of(99, frozenset({"bread", "milk"}))
        assert 0 <= first < 4
        assert stable_shard_hash(basket) == stable_shard_hash({"bread", "milk"})

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardPlan(0)
        with pytest.raises(ConfigurationError):
            ShardPlan(2, "psychic")

    def test_positional_shard_sizes_match_assignment(self):
        for strategy in ("round-robin", "contiguous"):
            plan = ShardPlan(3, strategy, n_points=11)
            sizes = plan.positional_shard_sizes()
            counted = [0, 0, 0]
            for position in range(11):
                counted[plan.shard_of(position)] += 1
            assert sizes == counted

    def test_hash_strategy_has_no_positional_sizes(self):
        assert ShardPlan(3, "hash", n_points=11).positional_shard_sizes() is None


class TestAllocateSampleSizes:
    def test_proportional_and_exact_total(self):
        allocation = allocate_sample_sizes([100, 100, 200], 100)
        assert sum(allocation) == 100
        assert allocation[2] > allocation[0]

    def test_every_nonempty_shard_represented(self):
        allocation = allocate_sample_sizes([1000, 3, 0], 10)
        assert allocation[1] >= 1
        assert allocation[2] == 0
        assert sum(allocation) == 10

    def test_caps_at_shard_sizes(self):
        allocation = allocate_sample_sizes([2, 2], 100)
        assert allocation == [2, 2]

    def test_one_point_floor_wins_over_tiny_budget(self):
        # Documented exception: a budget smaller than the number of
        # non-empty shards yields one point per shard, not the budget —
        # and the overshoot is reported, not silent.
        with pytest.warns(RuntimeWarning, match="sample budget 2 is below"):
            assert allocate_sample_sizes([5, 5, 5], 2) == [1, 1, 1]

    def test_budget_equal_to_shard_count_does_not_warn(self):
        # Boundary: one point per non-empty shard exactly fits the budget.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert allocate_sample_sizes([5, 5, 5], 3) == [1, 1, 1]

    def test_empty_shards_do_not_count_toward_the_floor(self):
        # Two non-empty shards, budget two: exactly satisfiable, no warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert allocate_sample_sizes([5, 0, 5], 2) == [1, 0, 1]

    def test_overshoot_warning_reports_allocation(self):
        with pytest.warns(RuntimeWarning, match="allocating 4 points"):
            allocation = allocate_sample_sizes([9, 9, 9, 9], 3)
        assert allocation == [1, 1, 1, 1]

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            allocate_sample_sizes([5, 5], 0)


class TestClusterShards:
    def test_results_in_shard_order_and_empty_shards_skipped(self):
        samples = [([frozenset({1})], [0]), ([], []), ([frozenset({2})], [1])]
        seen = []

        def cluster_one(shard_id, sample, positions):
            seen.append(shard_id)
            return shard_id

        results = cluster_shards(samples, cluster_one, shard_workers=None)
        assert results == [0, 2]
        assert seen == [0, 2]

    def test_parallel_results_keep_shard_order(self):
        samples = [([frozenset({i})], [i]) for i in range(6)]
        results = cluster_shards(
            samples, lambda shard_id, sample, positions: shard_id, shard_workers=4
        )
        assert results == list(range(6))

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            cluster_shards([], lambda *a: None, shard_workers=0)


class TestShardFaultTolerance:
    """cluster_shards retries failed workers and degrades gracefully."""

    SAMPLES = [([frozenset({i})], [i]) for i in range(3)]

    @pytest.fixture(autouse=True)
    def _clean_failpoints(self):
        failpoints.reset()
        yield
        failpoints.reset()

    @staticmethod
    def _cluster_one(shard_id, sample, positions):
        return shard_id * 10

    def test_single_failure_recovered_by_retry(self):
        with failpoints.failpoint("shard.worker", times=1):
            results = cluster_shards(self.SAMPLES, self._cluster_one)
        assert list(results) == [0, 10, 20]
        assert results.skipped_shards == []
        assert results.errors == {}

    def test_retry_exhaustion_degrades_with_warning(self):
        # Shard 0 fails both its attempts: the run completes on the
        # survivors, warns, and records the skip for the caller.
        with failpoints.failpoint("shard.worker.0", times=2):
            with pytest.warns(RuntimeWarning, match="shard 0"):
                results = cluster_shards(self.SAMPLES, self._cluster_one)
        assert list(results) == [10, 20]
        assert results.skipped_shards == [0]
        assert isinstance(results.errors[0], failpoints.InjectedFaultError)

    def test_strict_raises_instead_of_degrading(self):
        with failpoints.failpoint("shard.worker.1", times=2):
            with pytest.raises(ShardExecutionError, match="shard"):
                cluster_shards(self.SAMPLES, self._cluster_one, strict=True)

    def test_all_shards_failing_raises_even_without_strict(self):
        with failpoints.failpoint("shard.worker"):
            with pytest.raises(ShardExecutionError):
                cluster_shards(self.SAMPLES, self._cluster_one)

    def test_retries_zero_means_single_attempt(self):
        with failpoints.failpoint("shard.worker.2", times=1):
            with pytest.warns(RuntimeWarning):
                results = cluster_shards(
                    self.SAMPLES, self._cluster_one, retries=0
                )
        assert results.skipped_shards == [2]

    def test_parallel_workers_also_retry(self):
        with failpoints.failpoint("shard.worker", times=1):
            results = cluster_shards(
                self.SAMPLES, self._cluster_one, shard_workers=3
            )
        assert list(results) == [0, 10, 20]
        assert results.skipped_shards == []

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            cluster_shards(self.SAMPLES, self._cluster_one, retries=-1)


class TestMergeShardSummaries:
    def test_merges_matching_clusters_across_shards(self):
        # Two shards saw the same two latent groups; the merge must pair
        # them up rather than keep four global clusters.
        group_a = [frozenset({1, 2, 3}), frozenset({1, 2, 4}), frozenset({1, 3, 4})]
        group_b = [frozenset({7, 8, 9}), frozenset({7, 8, 10}), frozenset({7, 9, 10})]
        pooled = group_a + group_b + group_a + group_b
        summaries = [(0, 1, 2), (3, 4, 5), (6, 7, 8), (9, 10, 11)]
        merged = merge_shard_summaries(
            pooled, summaries, n_clusters=2, theta=0.4, rng=0
        )
        assert sorted(merged.groups) == [(0, 2), (1, 3)]
        assert len(merged.merge_history) == 2
        assert not merged.stopped_early

    def test_fewer_summaries_than_clusters_is_a_no_op(self):
        pooled = [frozenset({1, 2}), frozenset({1, 3})]
        merged = merge_shard_summaries(
            pooled, [(0,), (1,)], n_clusters=4, theta=0.4, rng=0
        )
        assert sorted(merged.groups) == [(0,), (1,)]
        assert merged.merge_history == []

    def test_representatives_bounded(self):
        pooled = [frozenset({1, 2, i}) for i in range(20)]
        merged = merge_shard_summaries(
            pooled,
            [tuple(range(20))],
            n_clusters=1,
            theta=0.1,
            representatives_per_cluster=5,
            rng=0,
        )
        assert len(merged.representative_indices[0]) == 5

    def test_invalid_inputs_rejected(self):
        pooled = [frozenset({1})]
        with pytest.raises(DataValidationError):
            merge_shard_summaries(pooled, [], n_clusters=1, theta=0.4)
        with pytest.raises(DataValidationError):
            merge_shard_summaries(pooled, [()], n_clusters=1, theta=0.4)
        with pytest.raises(ConfigurationError):
            merge_shard_summaries(
                pooled, [(0,)], n_clusters=1, theta=0.4,
                representatives_per_cluster=0,
            )


class TestRunShardedDeterminism:
    def test_one_shard_bit_identical_to_streaming(self, tight_baskets, tmp_path):
        path = tmp_path / "baskets.txt"
        write_transactions(tight_baskets, path)
        streamed = _pipeline().run_streaming(path, batch_size=128)
        sharded = _pipeline().run_sharded(path, n_shards=1, batch_size=128)
        assert np.array_equal(streamed.labels, sharded.labels)
        assert streamed.clusters == sharded.clusters
        assert sharded.parameters["sharded"] is True
        assert sharded.parameters["n_shards"] == 1

    def test_one_shard_bit_identical_in_memory(self, tight_baskets):
        transactions = tight_baskets.transactions
        streamed = _pipeline().run_streaming(transactions, batch_size=64)
        sharded = _pipeline().run_sharded(transactions, n_shards=1, batch_size=64)
        assert np.array_equal(streamed.labels, sharded.labels)

    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_multi_shard_seed_reproducible(self, tight_baskets, strategy):
        transactions = tight_baskets.transactions
        first = _pipeline().run_sharded(
            transactions, n_shards=3, shard_strategy=strategy
        )
        second = _pipeline().run_sharded(
            transactions, n_shards=3, shard_strategy=strategy
        )
        assert np.array_equal(first.labels, second.labels)
        assert first.clusters == second.clusters

    def test_worker_count_never_changes_labels(self, tight_baskets):
        transactions = tight_baskets.transactions
        serial = _pipeline().run_sharded(transactions, n_shards=4)
        threaded = _pipeline().run_sharded(
            transactions, n_shards=4, shard_workers=4
        )
        assert np.array_equal(serial.labels, threaded.labels)

    def test_different_seeds_differ(self, tight_baskets):
        transactions = tight_baskets.transactions
        first = _pipeline(rng=7).run_sharded(transactions, n_shards=3)
        second = _pipeline(rng=8).run_sharded(transactions, n_shards=3)
        # Different sample draws virtually never give identical clusterings
        # on 800 points; equality here would mean the seed is ignored.
        assert not np.array_equal(first.labels, second.labels)

    def test_injected_worker_failure_recovered_identically(self, tight_baskets):
        # One worker fault absorbed by the retry: the sharded run must be
        # bit-identical to the no-fault run (per-shard sampling consumed
        # the RNG before the workers ran, so the retry sees the same
        # sample) and must not record any skipped shard.
        transactions = tight_baskets.transactions
        failpoints.reset()
        clean = _pipeline().run_sharded(transactions, n_shards=3)
        try:
            with failpoints.failpoint("shard.worker", times=1):
                faulted = _pipeline().run_sharded(transactions, n_shards=3)
        finally:
            failpoints.reset()
        assert np.array_equal(clean.labels, faulted.labels)
        assert clean.clusters == faulted.clusters
        assert faulted.parameters["skipped_shards"] == []

    def test_exhausted_worker_degrades_and_records_skip(self, tight_baskets):
        transactions = tight_baskets.transactions
        failpoints.reset()
        try:
            with failpoints.failpoint("shard.worker.1", times=2):
                with pytest.warns(RuntimeWarning, match="shard 1"):
                    result = _pipeline().run_sharded(transactions, n_shards=3)
        finally:
            failpoints.reset()
        assert result.parameters["skipped_shards"] == [1]
        assert len(result.labels) == 800

    def test_strict_pipeline_raises_on_exhausted_worker(self, tight_baskets):
        transactions = tight_baskets.transactions
        failpoints.reset()
        try:
            with failpoints.failpoint("shard.worker.1", times=2):
                with pytest.raises(ShardExecutionError):
                    _pipeline(strict=True).run_sharded(
                        tight_baskets.transactions, n_shards=3
                    )
        finally:
            failpoints.reset()


class TestRunShardedQuality:
    def test_summary_merge_tracks_one_shot_run(self, tight_baskets):
        transactions = tight_baskets.transactions
        one_shot = _pipeline().run(transactions)
        sharded = _pipeline().run_sharded(transactions, n_shards=3)
        assert adjusted_rand_index(sharded.labels, one_shot.labels) >= 0.6
        assert adjusted_rand_index(sharded.labels, tight_baskets.labels) >= 0.6

    def test_every_point_gets_a_label_slot(self, tight_baskets):
        sharded = _pipeline().run_sharded(tight_baskets.transactions, n_shards=3)
        assert len(sharded.labels) == len(tight_baskets.transactions)
        # Labels and cluster membership agree, as in every other entry point.
        for label, members in enumerate(sharded.clusters):
            assert all(sharded.labels[index] == label for index in members)

    def test_timings_and_parameters_recorded(self, tight_baskets):
        sharded = _pipeline().run_sharded(
            tight_baskets.transactions, n_shards=3, shard_workers=2
        )
        for phase in (
            "sampling", "neighbors", "shard_clustering", "merge",
            "clustering", "labeling", "total",
        ):
            assert phase in sharded.timings
        assert sharded.parameters["n_shards"] == 3
        assert sharded.parameters["shard_workers"] == 2
        assert sharded.parameters["shard_strategy"] == "round-robin"

    def test_labeling_result_matches_final_label_space(self, tight_baskets):
        sharded = _pipeline().run_sharded(tight_baskets.transactions, n_shards=3)
        assert sharded.labeling_result is not None
        assert np.array_equal(
            sharded.labels[sharded.labeled_indices],
            sharded.labeling_result.labels,
        )


class TestResolveShardExecutor:
    def _worker_config(self):
        return ShardWorkerConfig.from_pipeline(_pipeline())

    def test_concrete_names_pass_through(self):
        assert resolve_shard_executor(DEFAULT_SHARD_EXECUTOR) == DEFAULT_SHARD_EXECUTOR
        assert (
            resolve_shard_executor(PROCESS_SHARD_EXECUTOR)
            == PROCESS_SHARD_EXECUTOR
        )

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown shard executor"):
            resolve_shard_executor("psychic")

    def test_auto_without_worker_config_is_thread(self):
        assert (
            resolve_shard_executor(AUTO_SHARD_EXECUTOR, shard_workers=4)
            == DEFAULT_SHARD_EXECUTOR
        )

    def test_auto_single_worker_is_thread(self):
        resolved = resolve_shard_executor(
            AUTO_SHARD_EXECUTOR, shard_workers=1, worker_config=self._worker_config()
        )
        assert resolved == DEFAULT_SHARD_EXECUTOR

    def test_auto_prefers_process_on_multicore(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        resolved = resolve_shard_executor(
            AUTO_SHARD_EXECUTOR, shard_workers=4, worker_config=self._worker_config()
        )
        assert resolved == PROCESS_SHARD_EXECUTOR

    def test_auto_stays_on_thread_for_single_core(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        resolved = resolve_shard_executor(
            AUTO_SHARD_EXECUTOR, shard_workers=4, worker_config=self._worker_config()
        )
        assert resolved == DEFAULT_SHARD_EXECUTOR

    def test_process_executor_needs_worker_config(self):
        samples = [([frozenset({1, 2})], [0])]
        with pytest.raises(ConfigurationError, match="worker_config"):
            cluster_shards(
                samples,
                lambda shard_id, sample, positions: shard_id,
                executor=PROCESS_SHARD_EXECUTOR,
            )


class TestProcessExecutor:
    """The process executor is invisible: labels match the thread path."""

    @pytest.fixture(autouse=True)
    def _clean_failpoints(self):
        failpoints.reset()
        yield
        failpoints.reset()

    @pytest.fixture(scope="class")
    def thread_run(self, tight_baskets):
        return _pipeline().run_sharded(
            tight_baskets.transactions, n_shards=3, shard_workers=2
        )

    def test_process_matches_thread_bit_identically(
        self, tight_baskets, thread_run
    ):
        processed = _pipeline().run_sharded(
            tight_baskets.transactions,
            n_shards=3,
            shard_workers=2,
            shard_executor=PROCESS_SHARD_EXECUTOR,
        )
        assert np.array_equal(thread_run.labels, processed.labels)
        assert thread_run.clusters == processed.clusters
        assert processed.parameters["shard_executor"] == PROCESS_SHARD_EXECUTOR

    def test_process_worker_count_never_changes_labels(
        self, tight_baskets, thread_run
    ):
        processed = _pipeline().run_sharded(
            tight_baskets.transactions,
            n_shards=3,
            shard_workers=3,
            shard_executor=PROCESS_SHARD_EXECUTOR,
        )
        assert np.array_equal(thread_run.labels, processed.labels)

    def test_injected_crash_recovered_identically(self, tight_baskets, thread_run):
        # One injected worker crash absorbed by the retry wave: labels must
        # stay bit-identical and no shard may be recorded as skipped.
        with failpoints.failpoint("shard.worker", times=1):
            faulted = _pipeline().run_sharded(
                tight_baskets.transactions,
                n_shards=3,
                shard_workers=2,
                shard_executor=PROCESS_SHARD_EXECUTOR,
            )
        assert np.array_equal(thread_run.labels, faulted.labels)
        assert faulted.parameters["skipped_shards"] == []

    def test_exhausted_worker_degrades_with_warning(self, tight_baskets):
        # The degraded-run warning must cross the process boundary: the
        # child raises, the parent warns and records the skip.
        with failpoints.failpoint("shard.worker.1", times=2):
            with pytest.warns(RuntimeWarning, match="shard 1"):
                result = _pipeline().run_sharded(
                    tight_baskets.transactions,
                    n_shards=3,
                    shard_workers=2,
                    shard_executor=PROCESS_SHARD_EXECUTOR,
                )
        assert result.parameters["skipped_shards"] == [1]
        assert len(result.labels) == 800


class TestShardRetries:
    """run_sharded exposes the retry budget (regression: it used to be
    hard-wired, so a shard failing more than one attempt could never
    succeed even though cluster_shards supported deeper budgets)."""

    @pytest.fixture(autouse=True)
    def _clean_failpoints(self):
        failpoints.reset()
        yield
        failpoints.reset()

    def test_shard_surviving_two_failures_is_bit_identical(self, tight_baskets):
        transactions = tight_baskets.transactions
        clean = _pipeline().run_sharded(transactions, n_shards=3)
        with failpoints.failpoint("shard.worker.1", times=2):
            retried = _pipeline().run_sharded(
                transactions, n_shards=3, shard_retries=2
            )
        assert np.array_equal(clean.labels, retried.labels)
        assert clean.clusters == retried.clusters
        assert retried.parameters["skipped_shards"] == []
        assert retried.parameters["shard_retries"] == 2

    def test_default_budget_still_degrades_on_double_failure(self, tight_baskets):
        with failpoints.failpoint("shard.worker.1", times=2):
            with pytest.warns(RuntimeWarning, match="shard 1"):
                result = _pipeline().run_sharded(
                    tight_baskets.transactions, n_shards=3
                )
        assert result.parameters["skipped_shards"] == [1]

    def test_retries_zero_gives_single_attempt(self, tight_baskets):
        with failpoints.failpoint("shard.worker.2", times=1):
            with pytest.warns(RuntimeWarning, match="shard 2"):
                result = _pipeline().run_sharded(
                    tight_baskets.transactions, n_shards=3, shard_retries=0
                )
        assert result.parameters["skipped_shards"] == [2]

    def test_negative_retries_rejected(self, tight_baskets):
        with pytest.raises(ConfigurationError, match="shard_retries"):
            _pipeline().run_sharded(
                tight_baskets.transactions, n_shards=2, shard_retries=-1
            )

    def test_process_path_honours_deeper_budget(self, tight_baskets):
        transactions = tight_baskets.transactions
        clean = _pipeline().run_sharded(transactions, n_shards=3)
        with failpoints.failpoint("shard.worker.1", times=2):
            retried = _pipeline().run_sharded(
                transactions,
                n_shards=3,
                shard_workers=2,
                shard_executor=PROCESS_SHARD_EXECUTOR,
                shard_retries=2,
            )
        assert np.array_equal(clean.labels, retried.labels)
        assert retried.parameters["skipped_shards"] == []


def _two_group_pool():
    group_a = [frozenset({1, 2, 3}), frozenset({1, 2, 4}), frozenset({1, 3, 4})]
    group_b = [frozenset({7, 8, 9}), frozenset({7, 8, 10}), frozenset({7, 9, 10})]
    pooled = (group_a + group_b) * 4
    summaries = [tuple(range(start, start + 3)) for start in range(0, 24, 3)]
    return pooled, summaries


class TestHierarchicalMerge:
    """fan_in merging: one level is bit-identical to the flat merge,
    deeper hierarchies are seed-reproducible."""

    def test_single_level_bit_identical_to_flat(self):
        pooled, summaries = _two_group_pool()
        flat = merge_shard_summaries(
            pooled, summaries, n_clusters=2, theta=0.4, rng=0
        )
        fanned = merge_shard_summaries(
            pooled, summaries, n_clusters=2, theta=0.4, rng=0,
            fan_in=len(summaries),
        )
        assert fanned.groups == flat.groups
        assert fanned.merge_history == flat.merge_history
        assert fanned.stopped_early == flat.stopped_early
        assert flat.levels == 1
        assert fanned.levels == 1

    def test_hierarchy_recovers_the_latent_groups(self):
        pooled, summaries = _two_group_pool()
        flat = merge_shard_summaries(
            pooled, summaries, n_clusters=2, theta=0.4, rng=0
        )
        for fan_in in (2, 4):
            merged = merge_shard_summaries(
                pooled, summaries, n_clusters=2, theta=0.4, rng=0, fan_in=fan_in
            )
            assert merged.levels > 1
            assert sorted(merged.groups) == sorted(flat.groups)

    def test_hierarchy_is_seed_reproducible(self):
        pooled, summaries = _two_group_pool()
        first = merge_shard_summaries(
            pooled, summaries, n_clusters=2, theta=0.4, rng=3, fan_in=2
        )
        second = merge_shard_summaries(
            pooled, summaries, n_clusters=2, theta=0.4, rng=3, fan_in=2
        )
        assert first.groups == second.groups
        assert first.levels == second.levels

    def test_level_count_follows_fan_in(self):
        pooled, summaries = _two_group_pool()
        merged = merge_shard_summaries(
            pooled, summaries, n_clusters=2, theta=0.4, rng=0, fan_in=2
        )
        # Eight summaries at fan-in two: 8 -> 4 -> 2 units, then the final
        # flat merge over the survivors.
        assert merged.levels == 3

    def test_group_ids_refer_to_original_summaries(self):
        pooled, summaries = _two_group_pool()
        merged = merge_shard_summaries(
            pooled, summaries, n_clusters=2, theta=0.4, rng=0, fan_in=2
        )
        flattened = sorted(i for group in merged.groups for i in group)
        assert flattened == list(range(len(summaries)))

    def test_invalid_fan_in_rejected(self):
        pooled, summaries = _two_group_pool()
        with pytest.raises(ConfigurationError, match="fan_in"):
            merge_shard_summaries(
                pooled, summaries, n_clusters=2, theta=0.4, rng=0, fan_in=1
            )

    def test_summary_groups_must_partition(self):
        pooled, summaries = _two_group_pool()
        with pytest.raises(ConfigurationError, match="summary_groups"):
            merge_shard_summaries(
                pooled, summaries, n_clusters=2, theta=0.4, rng=0,
                fan_in=2, summary_groups=[[0, 1], [1, 2]],
            )
        with pytest.raises(ConfigurationError, match="summary_groups"):
            merge_shard_summaries(
                pooled, summaries, n_clusters=2, theta=0.4, rng=0,
                fan_in=2, summary_groups=[[0, 1]],
            )

    def test_run_sharded_fan_in_at_least_shards_is_flat(self, tight_baskets):
        transactions = tight_baskets.transactions
        flat = _pipeline().run_sharded(transactions, n_shards=4)
        fanned = _pipeline().run_sharded(
            transactions, n_shards=4, merge_fan_in=4
        )
        assert np.array_equal(flat.labels, fanned.labels)
        assert flat.clusters == fanned.clusters
        assert fanned.parameters["merge_fan_in"] == 4
        assert fanned.parameters["merge_levels"] == 1

    def test_run_sharded_hierarchy_reproducible_and_sound(self, tight_baskets):
        transactions = tight_baskets.transactions
        first = _pipeline().run_sharded(
            transactions, n_shards=4, merge_fan_in=2
        )
        second = _pipeline().run_sharded(
            transactions, n_shards=4, merge_fan_in=2
        )
        assert np.array_equal(first.labels, second.labels)
        assert first.parameters["merge_levels"] >= 1
        flat = _pipeline().run_sharded(transactions, n_shards=4)
        assert adjusted_rand_index(first.labels, flat.labels) >= 0.6


class TestAdaptiveRepresentatives:
    def test_bounds_clip_to_floor_and_ceiling(self):
        pooled = [frozenset({i, i + 1}) for i in range(0, 12000, 2)]
        tiny = tuple(range(2))
        huge = tuple(range(len(pooled)))
        bounds = adaptive_representative_bounds(pooled, [tiny, huge])
        assert bounds[0] == ADAPTIVE_REPRESENTATIVES_FLOOR
        assert bounds[1] == ADAPTIVE_REPRESENTATIVES_CEILING

    def test_spread_raises_the_budget(self):
        uniform = [frozenset(range(5)) for _ in range(200)]
        mixed = [
            frozenset(range(1 + (i % 13))) for i in range(200)
        ]
        summary = tuple(range(200))
        uniform_bound = adaptive_representative_bounds(uniform, [summary])[0]
        mixed_bound = adaptive_representative_bounds(mixed, [summary])[0]
        assert mixed_bound > uniform_bound

    def test_merge_accepts_auto_budget(self):
        pooled, summaries = _two_group_pool()
        merged = merge_shard_summaries(
            pooled, summaries, n_clusters=2, theta=0.4, rng=0,
            representatives_per_cluster=ADAPTIVE_REPRESENTATIVES,
        )
        assert sorted(i for g in merged.groups for i in g) == list(range(8))

    def test_unknown_string_budget_rejected(self):
        pooled, summaries = _two_group_pool()
        with pytest.raises(ConfigurationError, match="representatives"):
            merge_shard_summaries(
                pooled, summaries, n_clusters=2, theta=0.4, rng=0,
                representatives_per_cluster="psychic",
            )

    def test_run_sharded_accepts_auto(self, tight_baskets):
        result = _pipeline().run_sharded(
            tight_baskets.transactions,
            n_shards=3,
            representatives_per_cluster=ADAPTIVE_REPRESENTATIVES,
        )
        assert result.parameters["representatives_per_cluster"] == (
            ADAPTIVE_REPRESENTATIVES
        )
        assert len(result.labels) == 800


class TestRunShardedValidation:
    def test_invalid_shard_count_rejected(self, tight_baskets):
        with pytest.raises(ConfigurationError):
            _pipeline().run_sharded(tight_baskets.transactions, n_shards=0)

    def test_unknown_strategy_rejected(self, tight_baskets):
        with pytest.raises(ConfigurationError):
            _pipeline().run_sharded(
                tight_baskets.transactions, n_shards=2, shard_strategy="psychic"
            )

    def test_empty_source_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n")
        with pytest.raises(DataValidationError):
            _pipeline().run_sharded(path, n_shards=2)

    def test_invalid_worker_count_rejected(self, tight_baskets):
        with pytest.raises(ConfigurationError):
            _pipeline().run_sharded(
                tight_baskets.transactions, n_shards=2, shard_workers=0
            )

    def test_unknown_executor_rejected(self, tight_baskets):
        with pytest.raises(ConfigurationError, match="unknown shard executor"):
            _pipeline().run_sharded(
                tight_baskets.transactions, n_shards=2, shard_executor="psychic"
            )

    def test_auto_executor_resolved_and_recorded(self, tight_baskets):
        result = _pipeline().run_sharded(
            tight_baskets.transactions, n_shards=2,
            shard_executor=AUTO_SHARD_EXECUTOR,
        )
        assert result.parameters["shard_executor"] in (
            DEFAULT_SHARD_EXECUTOR, PROCESS_SHARD_EXECUTOR
        )
