"""Cross-backend equivalence suite for the neighbour-backend registry.

Every registered backend must produce a bit-identical adjacency matrix on
the same inputs — over a theta grid including the 0 and 1 extremes, with
empty and duplicate transactions, and for every measure implementing the
vectorized-counts capability (Jaccard, overlap coefficient, Dice).  The
registry's error paths (unknown backends, duplicate registration,
capability mismatches, bad block sizes) are covered alongside.
"""

import numpy as np
import pytest

from repro.core.neighbors import (
    AUTO_BLOCKED_THRESHOLD,
    AUTO_INVERTED_MAX_DENSITY,
    AUTO_INVERTED_MIN_POINTS,
    DEFAULT_BLOCK_SIZE,
    NEIGHBOR_STRATEGIES,
    available_backends,
    candidate_pair_density,
    compute_neighbors,
    get_backend,
    register_backend,
    select_backend_name,
)
from repro.errors import ConfigurationError
from repro.similarity.jaccard import (
    DiceSimilarity,
    JaccardSimilarity,
    OverlapCoefficientSimilarity,
    SetCosineSimilarity,
)
from repro.similarity.overlap import SimpleMatchingSimilarity

BACKENDS = ("bruteforce", "vectorized", "blocked", "inverted-index")

#: Thresholds exercised by the grid: both extremes plus interior values
#: that sit exactly on representable similarity boundaries (0.5 is a
#: common exact Jaccard/Dice value, so >= comparisons are stressed).
THETA_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Every measure with the vectorized-counts capability — set cosine
#: included: its sqrt-based minimum-overlap bound is the most
#: rounding-prone, so it must face the inverted-index pruning too.
MEASURES = (
    JaccardSimilarity(),
    OverlapCoefficientSimilarity(),
    DiceSimilarity(),
    SetCosineSimilarity(),
)


def random_transactions(rng, n, pool=24, max_size=8):
    return [
        frozenset(rng.choice(pool, size=int(rng.integers(1, max_size)), replace=False).tolist())
        for _ in range(n)
    ]


def assert_all_backends_agree(transactions, theta, measure, block_size=None):
    reference = compute_neighbors(
        transactions, theta, measure=measure, strategy="bruteforce"
    ).adjacency
    for strategy in BACKENDS[1:]:
        fast = compute_neighbors(
            transactions, theta, measure=measure, strategy=strategy,
            block_size=block_size,
        ).adjacency
        assert (reference != fast).nnz == 0, (
            "backend %r disagrees with bruteforce at theta=%s under %s"
            % (strategy, theta, measure.name)
        )
        # Same canonical CSR shape, not just the same pattern.
        assert fast.shape == reference.shape
        assert fast.dtype == np.bool_


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("theta", THETA_GRID)
    @pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
    def test_random_workload(self, theta, measure, rng):
        transactions = random_transactions(rng, 40)
        assert_all_backends_agree(transactions, theta, measure)

    @pytest.mark.parametrize("theta", THETA_GRID)
    @pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
    def test_with_empty_transactions(self, theta, measure, rng):
        # Empty sets never appear in an incidence product, yet all three
        # measures define two empty sets as identical (similarity 1).
        transactions = random_transactions(rng, 20) + [frozenset()] * 3
        assert_all_backends_agree(transactions, theta, measure)

    @pytest.mark.parametrize("theta", THETA_GRID)
    @pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
    def test_with_duplicate_transactions(self, theta, measure, rng):
        base = random_transactions(rng, 15)
        transactions = base + base[:5] + [frozenset({1, 2, 3})] * 4
        assert_all_backends_agree(transactions, theta, measure)

    @pytest.mark.parametrize("block_size", [1, 3, 7, 64, 1000])
    def test_blocked_block_size_never_changes_result(self, block_size, rng):
        transactions = random_transactions(rng, 35)
        reference = compute_neighbors(transactions, 0.4, strategy="vectorized").adjacency
        blocked = compute_neighbors(
            transactions, 0.4, strategy="blocked", block_size=block_size
        ).adjacency
        assert (reference != blocked).nnz == 0

    def test_two_point_and_single_point_inputs(self):
        for transactions in ([{1, 2, 3}, {2, 3, 4}], [{1, 2}]):
            assert_all_backends_agree(transactions, 0.5, JaccardSimilarity())

    def test_theta_one_exact_duplicates_only(self, rng):
        transactions = [frozenset({1, 2}), frozenset({1, 2}), frozenset({1, 2, 3})]
        for strategy in BACKENDS:
            graph = compute_neighbors(transactions, 1.0, strategy=strategy)
            assert graph.adjacency[0, 1]
            assert not graph.adjacency[0, 2]

    def test_shared_item_index_accepted_by_all_fast_backends(self, rng):
        from repro.data.encoding import build_item_index

        transactions = random_transactions(rng, 25)
        index = build_item_index(transactions)
        for strategy in BACKENDS[1:]:
            with_index = compute_neighbors(
                transactions, 0.4, strategy=strategy, item_index=index
            ).adjacency
            without = compute_neighbors(transactions, 0.4, strategy=strategy).adjacency
            assert (with_index != without).nnz == 0


class TestAutoSelection:
    def test_non_vectorizable_measure_goes_bruteforce(self):
        measure = SimpleMatchingSimilarity(n_attributes=4)
        assert select_backend_name(measure, 10) == "bruteforce"
        assert select_backend_name(measure, 10**6) == "bruteforce"

    def test_small_inputs_use_one_shot_vectorized(self):
        assert select_backend_name(JaccardSimilarity(), 100) == "vectorized"
        assert select_backend_name(JaccardSimilarity(), AUTO_BLOCKED_THRESHOLD - 1) == "vectorized"

    def test_large_inputs_switch_to_blocked(self):
        assert select_backend_name(JaccardSimilarity(), AUTO_BLOCKED_THRESHOLD) == "blocked"
        assert select_backend_name(DiceSimilarity(), AUTO_BLOCKED_THRESHOLD + 1) == "blocked"


class TestAutoInvertedHeuristic:
    """Decision boundary of the posting-list-density inverted-index pick."""

    @staticmethod
    def rare_item_transactions(n):
        # Every item occurs exactly twice: candidate mass n/2 pairs out of
        # n(n-1)/2, density ~ 1/(n-1) — deep inside the sparse regime.
        return [frozenset({i // 2, 10**6 + i}) for i in range(n)]

    @staticmethod
    def dense_transactions(n):
        # Every point shares item 0 with every other: density >= 1.
        return [frozenset({0, i}) for i in range(n)]

    def test_density_of_disjoint_transactions_is_zero(self):
        assert candidate_pair_density([frozenset({1}), frozenset({2})]) == 0.0
        assert candidate_pair_density([frozenset({1})]) == 0.0

    def test_density_of_fully_shared_item_is_one(self):
        assert candidate_pair_density(self.dense_transactions(100)) >= 1.0

    def test_density_counts_pairs_once_per_shared_item(self):
        # Two points sharing two items: mass 2 over 1 pair -> density 2.
        transactions = [frozenset({1, 2}), frozenset({1, 2})]
        assert candidate_pair_density(transactions) == pytest.approx(2.0)

    def test_sparse_rare_item_workload_picks_inverted_index(self):
        n = AUTO_INVERTED_MIN_POINTS
        transactions = self.rare_item_transactions(n)
        assert candidate_pair_density(transactions) <= AUTO_INVERTED_MAX_DENSITY
        assert (
            select_backend_name(JaccardSimilarity(), n, transactions)
            == "inverted-index"
        )

    def test_dense_workload_keeps_blocked(self):
        n = AUTO_INVERTED_MIN_POINTS
        transactions = self.dense_transactions(n)
        assert (
            select_backend_name(JaccardSimilarity(), n, transactions) == "blocked"
        )

    def test_below_scale_threshold_stays_vectorized_even_when_sparse(self):
        n = AUTO_INVERTED_MIN_POINTS - 1
        transactions = self.rare_item_transactions(n)
        assert (
            select_backend_name(JaccardSimilarity(), n, transactions)
            == "vectorized"
        )

    def test_without_transactions_the_size_only_choice_is_unchanged(self):
        assert (
            select_backend_name(JaccardSimilarity(), AUTO_INVERTED_MIN_POINTS)
            == "blocked"
        )

    def test_non_vectorizable_measure_still_goes_bruteforce(self):
        measure = SimpleMatchingSimilarity(n_attributes=4)
        transactions = self.rare_item_transactions(AUTO_INVERTED_MIN_POINTS)
        assert (
            select_backend_name(measure, len(transactions), transactions)
            == "bruteforce"
        )

    def test_boundary_density_is_inclusive(self):
        # A synthetic workload sitting exactly on the density bound picks
        # the inverted index (<=, not <): n points, one shared item per
        # pair tuned so mass / pairs == AUTO_INVERTED_MAX_DENSITY.
        n = AUTO_INVERTED_MIN_POINTS
        pairs_budget = int(AUTO_INVERTED_MAX_DENSITY * n * (n - 1) / 2)
        # items shared by exactly two points, one per budgeted pair
        transactions = [frozenset({10**6 + i}) for i in range(n)]
        transactions = [set(t) for t in transactions]
        pair = 0
        for item in range(pairs_budget):
            left = (2 * item) % n
            right = (2 * item + 1) % n
            transactions[left].add(item)
            transactions[right].add(item)
            pair += 1
        transactions = [frozenset(t) for t in transactions]
        density = candidate_pair_density(transactions)
        assert density == pytest.approx(AUTO_INVERTED_MAX_DENSITY, rel=1e-3)
        assert (
            select_backend_name(JaccardSimilarity(), n, transactions)
            == "inverted-index"
        )

    @pytest.mark.parametrize("fold_limit", [1, 3, 7, 50])
    def test_inverted_sweep_identical_under_tiny_fold_limits(
        self, rng, monkeypatch, fold_limit
    ):
        # Forces every chunk path of the item-driven sweep — multi-list
        # chunks, single-list chunks and template segmentation — and the
        # mid-stream folds; the adjacency must stay bit-identical to the
        # unchunked run (mirrors the links.py fold-limit test).
        from repro.core.neighbors import inverted as inverted_module

        transactions = random_transactions(rng, 40)
        reference = compute_neighbors(
            transactions, 0.4, strategy="inverted-index"
        ).adjacency
        monkeypatch.setattr(inverted_module, "PAIR_FOLD_LIMIT", fold_limit)
        chunked = compute_neighbors(
            transactions, 0.4, strategy="inverted-index"
        ).adjacency
        assert (reference != chunked).nnz == 0

    def test_auto_compute_neighbors_uses_the_heuristic_end_to_end(self, rng):
        # A small-scale sanity check that the auto path accepts the
        # transactions argument: below the scale threshold nothing changes.
        transactions = random_transactions(rng, 30)
        auto = compute_neighbors(transactions, 0.4, strategy="auto").adjacency
        explicit = compute_neighbors(
            transactions, 0.4, strategy="vectorized"
        ).adjacency
        assert (auto != explicit).nnz == 0


class TestRegistryErrorPaths:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            compute_neighbors([{1, 2}], 0.5, strategy="bogus")
        # The error enumerates what *is* available.
        assert "auto" in str(excinfo.value)
        assert "blocked" in str(excinfo.value)

    def test_get_backend_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_backend("definitely-not-registered")

    def test_underscore_alias_resolves(self):
        # The issue-style spelling inverted_index is accepted as well.
        assert get_backend("inverted_index").name == "inverted-index"
        graph = compute_neighbors([{1, 2}, {1, 2, 3}], 0.5, strategy="inverted_index")
        assert graph.adjacency[0, 1]

    def test_duplicate_registration_rejected(self):
        class Dummy:
            name = "bruteforce"

            def supports(self, measure):
                return True

            def build_adjacency(self, *args, **kwargs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ConfigurationError):
            register_backend(Dummy())

    def test_nameless_backend_rejected(self):
        class Nameless:
            name = ""

        with pytest.raises(ConfigurationError):
            register_backend(Nameless())

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_neighbors([{1, 2}, {2, 3}], 0.5, strategy="blocked", block_size=0)
        with pytest.raises(ConfigurationError):
            compute_neighbors([{1, 2}, {2, 3}], 0.5, block_size=-4)

    def test_strategies_constant_mirrors_registry(self):
        assert NEIGHBOR_STRATEGIES == ("auto", *available_backends())
        assert DEFAULT_BLOCK_SIZE > 0

    def test_late_registered_backend_reaches_the_cli(self):
        # The plugin path: a backend registered after import must be
        # accepted by compute_neighbors and by the CLI parser, which
        # enumerates the registry at build time.
        from repro.cli import build_parser
        from repro.core.neighbors import base as backend_registry
        from repro.core.neighbors import neighbor_strategies

        class ConstantBackend:
            name = "test-constant"

            def supports(self, measure):
                return True

            def build_adjacency(self, transactions, theta, measure,
                                item_index=None, block_size=None):
                from repro.core.neighbors import complete_adjacency

                return complete_adjacency(len(transactions))

        register_backend(ConstantBackend())
        try:
            assert "test-constant" in neighbor_strategies()
            graph = compute_neighbors([{1}, {2}], 0.9, strategy="test-constant")
            assert graph.n_edges() == 1
            arguments = build_parser().parse_args(
                ["cluster", "x.txt", "--clusters", "2",
                 "--neighbor-strategy", "test-constant"]
            )
            assert arguments.neighbor_strategy == "test-constant"
        finally:
            del backend_registry._REGISTRY["test-constant"]
