"""Shared fixtures for the test suite.

Also registers the pinned hypothesis profile CI runs under
(``HYPOTHESIS_PROFILE=ci``): examples are derandomized (a fixed seed, so
every run explores the same cases — no flaky shrink sessions on shared
runners) and the per-example deadline is disabled (CI hardware jitter must
not fail a property that passes locally).  The default profile stays
untouched for local runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.data.dataset import CategoricalDataset, TransactionDataset
from repro.datasets.mushroom import generate_mushroom_like
from repro.datasets.votes import generate_votes_like

settings.register_profile("ci", deadline=None, derandomize=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def two_group_transactions() -> list[frozenset]:
    """Six baskets forming two obvious groups of three."""
    return [
        frozenset({1, 2, 3}),
        frozenset({1, 2, 4}),
        frozenset({1, 3, 4}),
        frozenset({7, 8, 9}),
        frozenset({7, 8, 10}),
        frozenset({7, 9, 10}),
    ]


@pytest.fixture
def two_group_labels() -> list[str]:
    """Ground truth for :func:`two_group_transactions`."""
    return ["a", "a", "a", "b", "b", "b"]


@pytest.fixture
def small_categorical_dataset() -> CategoricalDataset:
    """A tiny labelled categorical dataset with one missing value."""
    records = [
        ("y", "n", "y"),
        ("y", "n", "n"),
        ("y", None, "y"),
        ("n", "y", "n"),
        ("n", "y", "y"),
    ]
    labels = ["r", "r", "r", "d", "d"]
    return CategoricalDataset(records, attribute_names=["v1", "v2", "v3"], labels=labels)


@pytest.fixture
def small_transaction_dataset(two_group_transactions, two_group_labels) -> TransactionDataset:
    """The two-group baskets wrapped in a TransactionDataset."""
    return TransactionDataset(two_group_transactions, labels=two_group_labels)


@pytest.fixture(scope="session")
def votes_small() -> CategoricalDataset:
    """A small synthetic Votes data set (fast but structurally faithful)."""
    return generate_votes_like(n_republicans=40, n_democrats=60, rng=7)


@pytest.fixture(scope="session")
def mushroom_small():
    """A small synthetic Mushroom data set with its latent group labels."""
    return generate_mushroom_like(
        group_sizes_edible=(40, 25, 15, 10),
        group_sizes_poisonous=(35, 30, 20, 5),
        rng=11,
        return_groups=True,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator."""
    return np.random.default_rng(1234)
