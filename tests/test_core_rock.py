"""Tests for repro.core.rock (the agglomerative algorithm)."""

import numpy as np
import pytest

from repro.core.rock import RockClustering, RockResult, as_transactions
from repro.errors import (
    ConfigurationError,
    DataValidationError,
    InsufficientLinksError,
    NotFittedError,
)
from repro.evaluation.metrics import clustering_error


class TestAsTransactions:
    def test_transaction_dataset_passthrough(self, small_transaction_dataset):
        assert as_transactions(small_transaction_dataset) == small_transaction_dataset.transactions

    def test_categorical_dataset_converted(self, small_categorical_dataset):
        transactions = as_transactions(small_categorical_dataset)
        assert len(transactions) == small_categorical_dataset.n_records
        assert (0, "y") in transactions[0]

    def test_binary_matrix_converted(self):
        transactions = as_transactions(np.array([[1, 0, 1], [0, 1, 0]]))
        assert transactions[0] == frozenset({0, 2})
        assert transactions[1] == frozenset({1})

    def test_plain_iterable_of_sets(self):
        transactions = as_transactions([{1, 2}, {3}])
        assert all(isinstance(t, frozenset) for t in transactions)

    def test_empty_iterable_rejected(self):
        with pytest.raises(DataValidationError):
            as_transactions([])


class TestRockClustering:
    def test_two_group_recovery(self, two_group_transactions, two_group_labels):
        model = RockClustering(n_clusters=2, theta=0.4).fit(two_group_transactions)
        assert model.n_clusters_ == 2
        assert clustering_error(model.labels_, two_group_labels) == 0.0
        assert sorted(model.result_.cluster_sizes()) == [3, 3]

    def test_fit_predict_matches_labels(self, two_group_transactions):
        model = RockClustering(n_clusters=2, theta=0.4)
        labels = model.fit_predict(two_group_transactions)
        assert np.array_equal(labels, model.labels_)

    def test_labels_cover_all_points(self, two_group_transactions):
        model = RockClustering(n_clusters=2, theta=0.4).fit(two_group_transactions)
        assert np.all(model.labels_ >= 0)
        assert len(model.labels_) == len(two_group_transactions)

    def test_clusters_ordered_by_decreasing_size(self):
        transactions = [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4}, {8, 9}, {8, 9, 10}]
        model = RockClustering(n_clusters=2, theta=0.4).fit(transactions)
        sizes = model.result_.cluster_sizes()
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == 4

    def test_merge_history_recorded(self, two_group_transactions):
        model = RockClustering(n_clusters=2, theta=0.4).fit(two_group_transactions)
        history = model.result_.merge_history
        assert len(history) == 4  # 6 points -> 2 clusters
        assert all(step.goodness > 0 for step in history)
        assert [step.step for step in history] == list(range(4))

    def test_requested_k_larger_than_points(self, two_group_transactions):
        model = RockClustering(n_clusters=10, theta=0.4).fit(two_group_transactions)
        assert model.n_clusters_ == len(two_group_transactions)
        assert not model.result_.merge_history

    def test_stops_early_without_links(self):
        transactions = [{1, 2}, {3, 4}, {5, 6}]
        model = RockClustering(n_clusters=1, theta=0.9).fit(transactions)
        assert model.result_.stopped_early
        assert model.n_clusters_ == 3

    def test_strict_raises_when_out_of_links(self):
        transactions = [{1, 2}, {3, 4}, {5, 6}]
        with pytest.raises(InsufficientLinksError):
            RockClustering(n_clusters=1, theta=0.9, strict=True).fit(transactions)

    def test_strict_error_is_actionable_and_typed(self):
        # The error tells the user both what happened and what to change,
        # and sits under ReproError so the CLI maps it to exit code 3.
        from repro.errors import ReproError

        transactions = [{1, 2}, {3, 4}, {5, 6}]
        with pytest.raises(InsufficientLinksError, match="lower theta") as excinfo:
            RockClustering(n_clusters=1, theta=0.9, strict=True).fit(transactions)
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, RuntimeError)

    def test_non_strict_default_degrades_instead_of_raising(self):
        # Same link-starved input, default strict=False: the run completes
        # with a partial clustering and every point still gets a label.
        transactions = [{1, 2}, {3, 4}, {5, 6}]
        model = RockClustering(n_clusters=1, theta=0.9).fit(transactions)
        assert model.result_.stopped_early
        assert len(model.labels_) == 3

    def test_strict_is_quiet_when_links_suffice(self, two_group_transactions):
        model = RockClustering(n_clusters=2, theta=0.4, strict=True).fit(
            two_group_transactions
        )
        assert not model.result_.stopped_early

    def test_accepts_categorical_dataset(self, small_categorical_dataset):
        model = RockClustering(n_clusters=2, theta=0.5).fit(small_categorical_dataset)
        assert len(model.labels_) == small_categorical_dataset.n_records

    def test_accepts_transaction_dataset(self, small_transaction_dataset):
        model = RockClustering(n_clusters=2, theta=0.4).fit(small_transaction_dataset)
        assert model.n_clusters_ == 2

    def test_not_fitted_errors(self):
        model = RockClustering(n_clusters=2, theta=0.5)
        with pytest.raises(NotFittedError):
            model.labels_
        with pytest.raises(NotFittedError):
            model.clusters_
        with pytest.raises(NotFittedError):
            model.neighbor_graph_
        with pytest.raises(NotFittedError):
            model.links_

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RockClustering(n_clusters=0)
        with pytest.raises(ConfigurationError):
            RockClustering(n_clusters=2, theta=1.5)

    def test_exposes_neighbor_graph_and_links(self, two_group_transactions):
        model = RockClustering(n_clusters=2, theta=0.4).fit(two_group_transactions)
        assert model.neighbor_graph_.n_points == 6
        assert model.links_.shape == (6, 6)

    def test_criterion_positive_for_linked_clusters(self, two_group_transactions):
        model = RockClustering(n_clusters=2, theta=0.4).fit(two_group_transactions)
        assert model.result_.criterion > 0

    def test_result_summaries(self, two_group_transactions):
        model = RockClustering(n_clusters=2, theta=0.4).fit(two_group_transactions)
        summaries = model.result_.summaries()
        assert len(summaries) == 2
        assert {s.size for s in summaries} == {3}

    def test_include_self_links_false_still_clusters_triangles(self, two_group_transactions):
        model = RockClustering(
            n_clusters=2, theta=0.4, include_self_links=False
        ).fit(two_group_transactions)
        assert model.n_clusters_ == 2

    def test_self_links_allow_merging_isolated_pairs(self):
        # Two mutually similar points with no third common neighbour can only
        # merge under the paper's self-neighbour convention.
        transactions = [{1, 2, 3}, {1, 2, 4}, {7, 8, 9}, {7, 8, 10}]
        with_self = RockClustering(n_clusters=2, theta=0.4, include_self_links=True)
        without_self = RockClustering(n_clusters=2, theta=0.4, include_self_links=False)
        assert with_self.fit(transactions).n_clusters_ == 2
        assert without_self.fit(transactions).n_clusters_ == 4

    def test_deterministic_across_runs(self, two_group_transactions):
        first = RockClustering(n_clusters=2, theta=0.4).fit(two_group_transactions)
        second = RockClustering(n_clusters=2, theta=0.4).fit(two_group_transactions)
        assert np.array_equal(first.labels_, second.labels_)

    def test_single_cluster_request(self, two_group_transactions):
        # With theta=0 everything is linked, so a single cluster is reachable.
        model = RockClustering(n_clusters=1, theta=0.0).fit(two_group_transactions)
        assert model.n_clusters_ == 1
        assert model.result_.cluster_sizes() == [6]

    def test_bigger_dataset_quality(self, mushroom_small):
        dataset, groups = mushroom_small
        model = RockClustering(n_clusters=8, theta=0.8).fit(dataset)
        # Clusters should align closely with the latent groups.
        error = clustering_error(model.labels_, groups.tolist())
        assert error < 0.1

    def test_result_dataclass_fields(self, two_group_transactions):
        result = RockClustering(n_clusters=2, theta=0.4).fit(two_group_transactions).result_
        assert isinstance(result, RockResult)
        assert result.theta == 0.4
        assert result.n_clusters == 2
        assert result.elapsed_seconds >= 0
