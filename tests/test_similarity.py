"""Tests for the repro.similarity subpackage."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataValidationError
from repro.similarity.base import (
    pairwise_similarity_matrix,
    supports_vectorized_counts,
    validate_similarity_value,
)
from repro.similarity.jaccard import (
    DiceSimilarity,
    JaccardSimilarity,
    OverlapCoefficientSimilarity,
    SetCosineSimilarity,
    jaccard,
)
from repro.similarity.overlap import (
    HammingRecordSimilarity,
    SimpleMatchingSimilarity,
    record_overlap_similarity,
)
from repro.similarity.registry import available_measures, get_measure, register_measure


class TestJaccard:
    def test_paper_style_example(self):
        assert jaccard(frozenset({1, 2, 3}), frozenset({2, 3, 4})) == pytest.approx(0.5)

    def test_identical_sets(self):
        assert jaccard(frozenset({1, 2}), frozenset({1, 2})) == 1.0

    def test_disjoint_sets(self):
        assert jaccard(frozenset({1}), frozenset({2})) == 0.0

    def test_both_empty_defined_as_one(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_one_empty(self):
        assert jaccard(frozenset(), frozenset({1})) == 0.0

    def test_symmetry(self):
        a, b = frozenset({1, 2, 3, 4}), frozenset({3, 4, 5})
        assert jaccard(a, b) == jaccard(b, a)

    def test_class_wrapper_matches_function(self):
        measure = JaccardSimilarity()
        a, b = frozenset({1, 2, 3}), frozenset({1, 5})
        assert measure(a, b) == pytest.approx(jaccard(a, b))
        assert measure.name == "jaccard"


class TestOtherSetMeasures:
    def test_dice(self):
        assert DiceSimilarity()(frozenset({1, 2}), frozenset({2, 3})) == pytest.approx(0.5)

    def test_dice_empty(self):
        assert DiceSimilarity()(frozenset(), frozenset()) == 1.0

    def test_overlap_coefficient(self):
        measure = OverlapCoefficientSimilarity()
        assert measure(frozenset({1, 2}), frozenset({1, 2, 3, 4})) == 1.0
        assert measure(frozenset({1}), frozenset({2})) == 0.0

    def test_cosine(self):
        measure = SetCosineSimilarity()
        value = measure(frozenset({1, 2}), frozenset({2, 3, 4, 5}))
        assert value == pytest.approx(1 / np.sqrt(8))

    def test_all_measures_bounded(self):
        sets = [frozenset(), frozenset({1}), frozenset({1, 2, 3}), frozenset({2, 4})]
        for measure in (JaccardSimilarity(), DiceSimilarity(), OverlapCoefficientSimilarity(), SetCosineSimilarity()):
            for a in sets:
                for b in sets:
                    assert 0.0 <= measure(a, b) <= 1.0


class TestVectorizedCounts:
    """similarity_from_counts must agree bit-for-bit with __call__."""

    VECTORIZED = (
        JaccardSimilarity(),
        DiceSimilarity(),
        OverlapCoefficientSimilarity(),
        SetCosineSimilarity(),
    )

    def test_capability_detection(self):
        for measure in self.VECTORIZED:
            assert supports_vectorized_counts(measure)
        assert not supports_vectorized_counts(SimpleMatchingSimilarity(n_attributes=4))

    def test_counts_match_scalar_calls_exactly(self):
        pool = list(range(12))
        sets = [frozenset(), frozenset(pool[:1]), frozenset(pool[:4]),
                frozenset(pool[2:9]), frozenset(pool)]
        pairs = [(a, b) for a in sets for b in sets]
        intersections = np.array([len(a & b) for a, b in pairs], dtype=np.int64)
        left = np.array([len(a) for a, _ in pairs], dtype=np.int64)
        right = np.array([len(b) for _, b in pairs], dtype=np.int64)
        for measure in self.VECTORIZED:
            vectorized = measure.similarity_from_counts(intersections, left, right)
            scalar = np.array([measure(a, b) for a, b in pairs])
            # Bit-identical, not approximately equal: the cross-backend
            # adjacency guarantee rests on this.
            assert np.array_equal(vectorized, scalar), measure.name

    def test_empty_pair_is_one(self):
        zero = np.zeros(1, dtype=np.int64)
        for measure in self.VECTORIZED:
            assert measure.similarity_from_counts(zero, zero, zero)[0] == 1.0

    def test_minimum_intersection_is_a_valid_bound(self):
        # For every (a, b, theta): any i with similarity >= theta satisfies
        # i >= minimum_intersection(theta, a, b).
        sizes = np.arange(1, 10, dtype=np.int64)
        for measure in self.VECTORIZED:
            for theta in (0.1, 0.5, 0.9, 1.0):
                for a in sizes:
                    for b in sizes:
                        bound = float(measure.minimum_intersection(
                            theta, np.array([a]), np.array([b])
                        )[0])
                        for i in range(0, min(a, b) + 1):
                            sim = float(measure.similarity_from_counts(
                                np.array([i]), np.array([a]), np.array([b])
                            )[0])
                            if sim >= theta:
                                assert i >= bound - 1e-9 * (1.0 + bound)


class TestRecordMeasures:
    def test_record_overlap_basic(self):
        assert record_overlap_similarity(("a", "b", "c"), ("a", "x", "c")) == pytest.approx(2 / 3)

    def test_record_overlap_ignores_missing(self):
        assert record_overlap_similarity(("a", None), ("a", "b")) == 1.0

    def test_record_overlap_missing_counts_when_not_ignored(self):
        assert record_overlap_similarity(("a", None), ("a", "b"), ignore_missing=False) == 0.5

    def test_record_overlap_all_missing(self):
        assert record_overlap_similarity((None,), ("a",)) == 0.0

    def test_record_overlap_arity_mismatch(self):
        with pytest.raises(DataValidationError):
            record_overlap_similarity(("a",), ("a", "b"))

    def test_simple_matching_on_item_sets(self):
        measure = SimpleMatchingSimilarity(n_attributes=4)
        left = frozenset({(0, "a"), (1, "b"), (2, "c"), (3, "d")})
        right = frozenset({(0, "a"), (1, "b"), (2, "x"), (3, "y")})
        assert measure(left, right) == pytest.approx(0.5)

    def test_simple_matching_requires_positive_arity(self):
        with pytest.raises(DataValidationError):
            SimpleMatchingSimilarity(0)

    def test_hamming_record_similarity(self):
        measure = HammingRecordSimilarity()
        assert measure(("a", "b"), ("a", "b")) == 1.0
        assert measure(("a", "b"), ("x", "y")) == 0.0


class TestBaseHelpers:
    def test_validate_clamps_tiny_drift(self):
        assert validate_similarity_value(1.0 + 1e-12) == 1.0
        assert validate_similarity_value(-1e-12) == 0.0

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(DataValidationError):
            validate_similarity_value(1.5)

    def test_pairwise_matrix_properties(self, two_group_transactions):
        matrix = pairwise_similarity_matrix(two_group_transactions, JaccardSimilarity())
        assert matrix.shape == (6, 6)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)
        assert matrix[0, 3] == 0.0  # different groups share no items


class TestRegistry:
    def test_known_measures_available(self):
        names = available_measures()
        for expected in ("jaccard", "dice", "overlap-coefficient", "set-cosine", "simple-matching"):
            assert expected in names

    def test_get_measure_is_case_insensitive(self):
        assert get_measure("JACCARD").name == "jaccard"

    def test_get_measure_with_kwargs(self):
        measure = get_measure("simple-matching", n_attributes=5)
        assert measure.n_attributes == 5

    def test_unknown_measure_raises(self):
        with pytest.raises(ConfigurationError):
            get_measure("euclidean")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_measure("jaccard", JaccardSimilarity)

    def test_register_new_measure(self):
        class Constant:
            name = "constant-test-measure"

            def __call__(self, left, right):
                return 1.0

        register_measure("constant-test-measure", Constant)
        assert get_measure("constant-test-measure")(frozenset(), frozenset({1})) == 1.0
