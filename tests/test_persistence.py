"""Tests for repro.persistence: failpoints, WAL, snapshots and recovery.

The contract under test (docs/ARCHITECTURE.md, "Persistence & recovery"):
a session restored from the last durable checkpoint plus the WAL tail is
*bit-identical* to one that never stopped — same labels, same matrices,
same RNG stream — no matter where the process was killed.  The kill points
are exercised through the :mod:`repro.persistence.failpoints` registry
rather than actual signals, so every crash window is deterministic.
"""

import pickle
import struct

import numpy as np
import pytest

from repro.core.incremental import IncrementalRock
from repro.core.pipeline import RockPipeline
from repro.core.rock import RockClustering
from repro.data.io import write_transactions
from repro.datasets.market_basket import generate_market_baskets
from repro.errors import (
    ConfigurationError,
    PersistenceError,
    ReproError,
    SnapshotConfigMismatchError,
    SnapshotCorruptionError,
    SnapshotNotFoundError,
    SnapshotVersionError,
    WalCorruptionError,
)
from repro.persistence import failpoints
from repro.persistence.session import PersistentSession
from repro.persistence.snapshot import (
    CURRENT_NAME,
    MANIFEST_NAME,
    SNAPSHOT_FORMAT_VERSION,
    SessionSnapshot,
    latest_checkpoint,
    list_checkpoints,
)
from repro.persistence.wal import WriteAheadLog

# --------------------------------------------------------------------- #
# Fixtures and helpers
# --------------------------------------------------------------------- #
GROUP_A = [
    frozenset({1, 2, 3}), frozenset({1, 2, 4}),
    frozenset({1, 3, 4}), frozenset({2, 3, 4}),
]
GROUP_B = [
    frozenset({7, 8, 9}), frozenset({7, 8, 10}),
    frozenset({7, 9, 10}), frozenset({8, 9, 10}),
]
BOOTSTRAP = GROUP_A + GROUP_B
STREAM_BATCHES = [
    [frozenset({1, 2}), frozenset({7, 8})],
    [frozenset({2, 3})],
    [frozenset({9, 10}), frozenset({1, 4}), frozenset({8, 10})],
    [frozenset({3, 4}), frozenset({7, 9})],
]


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


def _session(theta=0.4, rng=0, **kwargs):
    clusters = RockClustering(n_clusters=2, theta=theta).fit(BOOTSTRAP).clusters_
    session = IncrementalRock(n_clusters=2, theta=theta, rng=rng, **kwargs)
    session.bootstrap(BOOTSTRAP, clusters)
    return session


def _assert_sessions_identical(left, right):
    """Bit-identity over everything the ingest path can observe."""
    assert (left.adjacency_ != right.adjacency_).nnz == 0
    assert (left.links_ != right.links_).nnz == 0
    assert left._members == right._members
    assert left._cluster_of == right._cluster_of
    assert {k: dict(v) for k, v in left._cluster_links.items()} == {
        k: dict(v) for k, v in right._cluster_links.items()
    }
    assert left._pair_heap == right._pair_heap
    assert left.rng.bit_generator.state == right.rng.bit_generator.state


def _run_schedule(session, batches):
    return [session.ingest(batch).labels.tolist() for batch in batches]


# --------------------------------------------------------------------- #
# Failpoint registry
# --------------------------------------------------------------------- #
class TestFailpoints:
    def test_inactive_site_is_a_no_op(self):
        failpoints.hit("nothing.armed")  # must not raise

    def test_activate_and_budget(self):
        failpoints.activate("site", times=2)
        with pytest.raises(failpoints.InjectedFaultError):
            failpoints.hit("site")
        with pytest.raises(failpoints.InjectedFaultError):
            failpoints.hit("site")
        failpoints.hit("site")  # budget exhausted

    def test_unlimited_budget(self):
        failpoints.activate("site")
        for _ in range(5):
            with pytest.raises(failpoints.InjectedFaultError):
                failpoints.hit("site")

    def test_zero_times_is_inert(self):
        failpoints.activate("site", times=0)
        failpoints.hit("site")

    def test_context_manager_deactivates_on_exit(self):
        with failpoints.failpoint("site"):
            assert "site" in failpoints.active_failpoints()
        assert "site" not in failpoints.active_failpoints()
        failpoints.hit("site")

    def test_consume_reports_without_raising(self):
        failpoints.activate("site", times=1)
        assert failpoints.consume("site") is True
        assert failpoints.consume("site") is False

    def test_error_is_not_a_repro_error(self):
        # Injected faults simulate infrastructure crashes; they must not be
        # swallowed by `except ReproError` handlers (e.g. the CLI).
        assert not issubclass(failpoints.InjectedFaultError, ReproError)

    def test_load_from_env_parses_names_and_budgets(self):
        failpoints.load_from_env({failpoints.ENV_VAR: "alpha, beta*2"})
        active = failpoints.active_failpoints()
        assert active["alpha"] == -1
        assert active["beta"] == 2


# --------------------------------------------------------------------- #
# Write-ahead log
# --------------------------------------------------------------------- #
class TestWriteAheadLog:
    def test_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        payloads = [["a", "b"], {"k": 1}, [frozenset({1, 2})]]
        for seq, payload in enumerate(payloads):
            wal.append(seq, payload)
        records = wal.recover()
        assert [record.seq for record in records] == [0, 1, 2]
        assert [record.payload for record in records] == payloads
        assert wal.last_seq() == 2

    def test_after_seq_filters_replayed_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        for seq in range(4):
            wal.append(seq, seq)
        tail = wal.recover(after_seq=1)
        assert [record.seq for record in tail] == [2, 3]

    def test_missing_file_recovers_empty(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "absent.log")
        assert wal.recover() == []
        assert wal.last_seq() == -1

    def test_reset_empties_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(0, "x")
        wal.reset()
        assert wal.recover() == []

    def test_torn_tail_truncated_not_crashed(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for seq in range(3):
            wal.append(seq, ["payload", seq])
        intact_size = path.stat().st_size
        wal.append(3, ["torn"])
        with path.open("r+b") as handle:  # cut the last record in half
            handle.truncate(intact_size + 7)
        records = wal.recover()
        assert [record.seq for record in records] == [0, 1, 2]
        assert path.stat().st_size == intact_size  # repaired in place

    def test_torn_append_failpoint_produces_recoverable_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(0, "good")
        with failpoints.failpoint("wal.torn-append", times=1):
            with pytest.raises(failpoints.InjectedFaultError):
                wal.append(1, "half-written")
        records = wal.recover()
        assert [record.payload for record in records] == ["good"]
        wal.append(1, "after-repair")
        assert [r.payload for r in wal.recover()] == ["good", "after-repair"]

    def test_mid_log_corruption_raises_typed_error(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for seq in range(3):
            wal.append(seq, "payload-%d" % seq)
        blob = bytearray(path.read_bytes())
        header = struct.calcsize("<QII")
        first = header + len(pickle.dumps("payload-0", pickle.HIGHEST_PROTOCOL))
        blob[first + header + 2] ^= 0xFF  # flip a byte inside record 1
        path.write_bytes(bytes(blob))
        with pytest.raises(WalCorruptionError):
            wal.recover()

    def test_corrupt_final_record_treated_as_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(0, "keep")
        keep_size = path.stat().st_size
        wal.append(1, "scramble")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        records = wal.recover()
        assert [record.payload for record in records] == ["keep"]
        assert path.stat().st_size == keep_size

    def test_wal_errors_sit_under_persistence_error(self):
        assert issubclass(WalCorruptionError, PersistenceError)
        assert issubclass(PersistenceError, ReproError)


# --------------------------------------------------------------------- #
# Snapshot save/load
# --------------------------------------------------------------------- #
class TestSnapshotRoundTrip:
    def test_restored_session_continues_bit_identically(self, tmp_path):
        reference = _session()
        _run_schedule(reference, STREAM_BATCHES[:2])

        interrupted = _session()
        _run_schedule(interrupted, STREAM_BATCHES[:2])
        SessionSnapshot(interrupted).save(tmp_path)
        restored = SessionSnapshot.load(tmp_path).session

        _assert_sessions_identical(restored, reference)
        tail_restored = _run_schedule(restored, STREAM_BATCHES[2:])
        tail_reference = _run_schedule(reference, STREAM_BATCHES[2:])
        assert tail_restored == tail_reference
        _assert_sessions_identical(restored, reference)

    def test_extra_and_wal_seq_round_trip(self, tmp_path):
        extra = {"labels": [1, 2, 3], "nested": {"k": "v"}}
        SessionSnapshot(_session(), extra=extra, wal_seq=17).save(tmp_path)
        loaded = SessionSnapshot.load(tmp_path)
        assert loaded.extra == extra
        assert loaded.wal_seq == 17

    def test_matching_expected_config_loads(self, tmp_path):
        session = _session()
        SessionSnapshot(session).save(tmp_path)
        loaded = SessionSnapshot.load(
            tmp_path, expected_config=session.config_dict()
        )
        assert loaded.session.config_dict() == session.config_dict()

    def test_keep_garbage_collects_old_checkpoints(self, tmp_path):
        session = _session()
        SessionSnapshot(session).save(tmp_path, keep=1)
        SessionSnapshot(session).save(tmp_path, keep=1)
        assert [p.name for p in list_checkpoints(tmp_path)] == ["checkpoint-000001"]
        SessionSnapshot(session).save(tmp_path, keep=2)
        assert len(list_checkpoints(tmp_path)) == 2

    def test_current_pointer_tracks_newest(self, tmp_path):
        session = _session()
        SessionSnapshot(session).save(tmp_path, keep=3)
        SessionSnapshot(session).save(tmp_path, keep=3)
        pointer = (tmp_path / CURRENT_NAME).read_text().strip()
        assert pointer == "checkpoint-000001"
        assert latest_checkpoint(tmp_path).name == pointer

    def test_dangling_current_falls_back_to_newest_dir(self, tmp_path):
        SessionSnapshot(_session()).save(tmp_path)
        (tmp_path / CURRENT_NAME).write_text("checkpoint-999999\n")
        assert latest_checkpoint(tmp_path).name == "checkpoint-000000"
        assert SessionSnapshot.load(tmp_path).session is not None


class TestSnapshotCrashSafety:
    @pytest.mark.parametrize("site", [
        "snapshot.before-manifest",
        "snapshot.before-rename",
        "snapshot.before-current",
    ])
    def test_kill_mid_snapshot_preserves_previous_checkpoint(
        self, tmp_path, site
    ):
        session = _session()
        SessionSnapshot(session, wal_seq=5).save(tmp_path)
        _run_schedule(session, STREAM_BATCHES[:1])
        with failpoints.failpoint(site, times=1):
            with pytest.raises(failpoints.InjectedFaultError):
                SessionSnapshot(session, wal_seq=9).save(tmp_path)
        loaded = SessionSnapshot.load(tmp_path)
        # Every site recovers to the previous checkpoint: the still-valid
        # CURRENT pointer wins even when the before-current kill left the
        # newer directory behind (the un-reset WAL covers the gap either
        # way, so both answers replay to the same state).
        assert loaded.wal_seq == 5
        # After the injected crash the directory keeps working.
        final = SessionSnapshot(session, wal_seq=9).save(tmp_path)
        assert SessionSnapshot.load(tmp_path).wal_seq == 9
        assert final.is_dir()

    def test_stale_tmp_directories_cleaned_on_next_save(self, tmp_path):
        session = _session()
        with failpoints.failpoint("snapshot.before-rename", times=1):
            with pytest.raises(failpoints.InjectedFaultError):
                SessionSnapshot(session).save(tmp_path)
        assert list(tmp_path.glob(".tmp-checkpoint-*"))
        SessionSnapshot(session).save(tmp_path)
        assert not list(tmp_path.glob(".tmp-checkpoint-*"))


class TestSnapshotValidation:
    def _saved(self, tmp_path):
        SessionSnapshot(_session()).save(tmp_path)
        return latest_checkpoint(tmp_path)

    def test_empty_directory_raises_not_found(self, tmp_path):
        with pytest.raises(SnapshotNotFoundError):
            SessionSnapshot.load(tmp_path / "nowhere")

    def test_wrong_version_raises_version_error(self, tmp_path):
        checkpoint = self._saved(tmp_path)
        manifest_path = checkpoint / MANIFEST_NAME
        text = manifest_path.read_text().replace(
            '"version": %d' % SNAPSHOT_FORMAT_VERSION, '"version": 999'
        )
        manifest_path.write_text(text)
        with pytest.raises(SnapshotVersionError, match="version 999"):
            SessionSnapshot.load(tmp_path)

    def test_mismatched_config_raises_with_differing_keys(self, tmp_path):
        session = _session()
        self._saved(tmp_path)
        wrong = dict(session.config_dict(), theta=0.9)
        with pytest.raises(SnapshotConfigMismatchError, match="theta"):
            SessionSnapshot.load(tmp_path, expected_config=wrong)

    def test_corrupted_blob_raises_naming_the_file(self, tmp_path):
        checkpoint = self._saved(tmp_path)
        blob_path = checkpoint / "arrays.npz"
        blob = bytearray(blob_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        blob_path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotCorruptionError, match="arrays.npz"):
            SessionSnapshot.load(tmp_path)

    def test_missing_blob_raises_corruption(self, tmp_path):
        checkpoint = self._saved(tmp_path)
        (checkpoint / "objects.pkl").unlink()
        with pytest.raises(SnapshotCorruptionError, match="objects.pkl"):
            SessionSnapshot.load(tmp_path)

    def test_missing_manifest_raises_corruption(self, tmp_path):
        checkpoint = self._saved(tmp_path)
        (checkpoint / MANIFEST_NAME).unlink()
        with pytest.raises(SnapshotCorruptionError, match=MANIFEST_NAME):
            SessionSnapshot.load(tmp_path)

    def test_unparsable_manifest_raises_corruption(self, tmp_path):
        checkpoint = self._saved(tmp_path)
        (checkpoint / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotCorruptionError, match="JSON"):
            SessionSnapshot.load(tmp_path)

    def test_foreign_manifest_raises_corruption(self, tmp_path):
        checkpoint = self._saved(tmp_path)
        (checkpoint / MANIFEST_NAME).write_text('{"format": "something-else"}')
        with pytest.raises(SnapshotCorruptionError):
            SessionSnapshot.load(tmp_path)

    def test_every_snapshot_error_sits_under_persistence_error(self):
        for error in (
            SnapshotNotFoundError,
            SnapshotCorruptionError,
            SnapshotVersionError,
            SnapshotConfigMismatchError,
        ):
            assert issubclass(error, PersistenceError)


# --------------------------------------------------------------------- #
# PersistentSession: WAL + snapshots end to end
# --------------------------------------------------------------------- #
class TestPersistentSession:
    def test_create_writes_immediate_checkpoint(self, tmp_path):
        store = PersistentSession.create(tmp_path, _session())
        assert store.n_snapshots == 1
        assert PersistentSession.can_resume(tmp_path)

    def test_crash_without_close_resumes_bit_identically(self, tmp_path):
        reference = _session()
        labels_reference = _run_schedule(reference, STREAM_BATCHES)

        store = PersistentSession.create(tmp_path, _session())
        labels_before = [
            store.ingest(batch).labels.tolist() for batch in STREAM_BATCHES[:2]
        ]
        del store  # simulated kill: no close(), WAL holds the tail

        resumed = PersistentSession.resume(tmp_path)
        assert resumed.n_replayed == 2
        labels_after = [
            resumed.ingest(batch).labels.tolist() for batch in STREAM_BATCHES[2:]
        ]
        assert labels_before + labels_after == labels_reference
        _assert_sessions_identical(resumed.session, reference)

    def test_snapshot_every_checkpoints_and_resets_wal(self, tmp_path):
        store = PersistentSession.create(tmp_path, _session(), snapshot_every=2)
        for batch in STREAM_BATCHES[:2]:
            store.ingest(batch)
        assert store.n_snapshots == 2  # checkpoint 0 + one periodic
        assert store.wal.last_seq() == -1  # reset after the checkpoint
        resumed = PersistentSession.resume(tmp_path)
        assert resumed.n_replayed == 0

    def test_torn_wal_append_recovers_previous_state(self, tmp_path):
        reference = _session()
        _run_schedule(reference, STREAM_BATCHES)

        store = PersistentSession.create(tmp_path, _session())
        store.ingest(STREAM_BATCHES[0])
        with failpoints.failpoint("wal.torn-append", times=1):
            with pytest.raises(failpoints.InjectedFaultError):
                store.ingest(STREAM_BATCHES[1])

        resumed = PersistentSession.resume(tmp_path)
        assert resumed.n_replayed == 1  # only the intact first record
        for batch in STREAM_BATCHES[1:]:
            resumed.ingest(batch)
        _assert_sessions_identical(resumed.session, reference)

    def test_crash_between_checkpoint_and_wal_reset_is_idempotent(
        self, tmp_path
    ):
        # The dangerous window: the checkpoint is durable but the WAL was
        # not reset before the kill.  The wal_seq guard must keep replay
        # from applying records the checkpoint already contains.
        reference = _session()
        _run_schedule(reference, STREAM_BATCHES)

        store = PersistentSession.create(tmp_path, _session())
        for batch in STREAM_BATCHES[:2]:
            store.ingest(batch)
        SessionSnapshot(store.session, wal_seq=store._wal_seq).save(tmp_path)
        # (no wal.reset() — simulated kill right here)

        resumed = PersistentSession.resume(tmp_path)
        assert resumed.n_replayed == 0
        for batch in STREAM_BATCHES[2:]:
            resumed.ingest(batch)
        _assert_sessions_identical(resumed.session, reference)

    def test_close_writes_final_checkpoint_once(self, tmp_path):
        store = PersistentSession.create(tmp_path, _session())
        store.ingest(STREAM_BATCHES[0])
        assert store.close() is not None
        assert store.close() is None  # nothing new since the checkpoint

    def test_kill_mid_periodic_snapshot_then_resume(self, tmp_path):
        # A crash *inside* a periodic checkpoint write: the previous
        # checkpoint plus the (not yet reset) WAL must still reconstruct
        # the full state.
        reference = _session()
        _run_schedule(reference, STREAM_BATCHES)

        store = PersistentSession.create(tmp_path, _session(), snapshot_every=2)
        store.ingest(STREAM_BATCHES[0])
        with failpoints.failpoint("snapshot.before-rename", times=1):
            with pytest.raises(failpoints.InjectedFaultError):
                store.ingest(STREAM_BATCHES[1])  # triggers the checkpoint

        resumed = PersistentSession.resume(tmp_path)
        assert resumed.n_replayed == 2
        for batch in STREAM_BATCHES[2:]:
            resumed.ingest(batch)
        _assert_sessions_identical(resumed.session, reference)

    def test_invalid_snapshot_every_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            PersistentSession(tmp_path, _session(), snapshot_every=0)

    def test_resume_nothing_raises_not_found(self, tmp_path):
        with pytest.raises(SnapshotNotFoundError):
            PersistentSession.resume(tmp_path / "empty")

    def test_double_close_is_idempotent(self, tmp_path):
        store = PersistentSession.create(tmp_path, _session())
        store.ingest(STREAM_BATCHES[0])
        assert store.closed is False
        assert store.close() is not None
        assert store.closed is True
        # Every further close is a pure no-op: no checkpoint, no error.
        before = store.n_snapshots
        assert store.close() is None
        assert store.close() is None
        assert store.n_snapshots == before

    def test_context_manager_closes_on_clean_exit(self, tmp_path):
        with PersistentSession.create(tmp_path, _session()) as store:
            store.ingest(STREAM_BATCHES[0])
            assert store.closed is False
        assert store.closed is True
        assert store.n_snapshots == 2  # checkpoint 0 + the final close

    def test_context_manager_tolerates_explicit_close_in_body(self, tmp_path):
        with PersistentSession.create(tmp_path, _session()) as store:
            store.ingest(STREAM_BATCHES[0])
            store.close()
        assert store.n_snapshots == 2  # the with-exit close was a no-op

    def test_context_manager_does_not_checkpoint_on_error(self, tmp_path):
        # An exception leaves the store closed WITHOUT a final checkpoint:
        # the session may be mid-mutation, so recovery must come from the
        # last durable checkpoint + WAL, not a snapshot of unknown state.
        with pytest.raises(RuntimeError, match="boom"):
            with PersistentSession.create(tmp_path, _session()) as store:
                store.ingest(STREAM_BATCHES[0])
                raise RuntimeError("boom")
        assert store.closed is True
        assert store.n_snapshots == 1  # only checkpoint 0
        resumed = PersistentSession.resume(tmp_path)
        assert resumed.n_replayed == 1  # the logged batch came back

    def test_ingest_after_close_reopens_the_store(self, tmp_path):
        store = PersistentSession.create(tmp_path, _session())
        store.ingest(STREAM_BATCHES[0])
        store.close()
        # run_online closes its store at the end of the run, but the
        # session object stays live and post-run ingests are documented —
        # a new write re-opens, and the next close checkpoints again.
        store.ingest(STREAM_BATCHES[1])
        assert store.closed is False
        assert store.close() is not None


# --------------------------------------------------------------------- #
# Pipeline wiring: run_online with snapshots and resume
# --------------------------------------------------------------------- #
class TestPipelinePersistence:
    @pytest.fixture(scope="class")
    def basket_path(self, tmp_path_factory):
        baskets = generate_market_baskets(rng=3, n_transactions=160, n_clusters=3)
        path = tmp_path_factory.mktemp("data") / "baskets.txt"
        write_transactions(baskets, path)
        return path

    def _pipeline(self):
        return RockPipeline(
            n_clusters=3, theta=0.3, sample_size=60, min_cluster_size=2, rng=5
        )

    def test_snapshot_run_matches_plain_run(self, basket_path, tmp_path):
        plain = self._pipeline().run_online(basket_path, batch_size=32)
        persisted = self._pipeline().run_online(
            basket_path, batch_size=32,
            snapshot_dir=tmp_path / "snaps", snapshot_every=1,
        )
        assert np.array_equal(plain.labels, persisted.labels)
        assert plain.clusters == persisted.clusters
        assert (tmp_path / "snaps" / CURRENT_NAME).is_file()

    def test_crash_mid_run_then_resume_is_bit_identical(
        self, basket_path, tmp_path, monkeypatch
    ):
        plain = self._pipeline().run_online(
            basket_path, batch_size=16, refresh_threshold=0.25
        )

        # Kill the run via a torn WAL write on the 4th ingest append.
        calls = {"n": 0}
        original = WriteAheadLog.append

        def crashing_append(self, seq, payload):
            calls["n"] += 1
            if calls["n"] == 4:
                failpoints.activate("wal.torn-append", times=1)
            return original(self, seq, payload)

        monkeypatch.setattr(WriteAheadLog, "append", crashing_append)
        snaps = tmp_path / "snaps"
        with pytest.raises(failpoints.InjectedFaultError):
            self._pipeline().run_online(
                basket_path, batch_size=16, refresh_threshold=0.25,
                snapshot_dir=snaps, snapshot_every=2,
            )
        monkeypatch.setattr(WriteAheadLog, "append", original)

        resumed = self._pipeline().run_online(
            basket_path, batch_size=16, refresh_threshold=0.25,
            snapshot_dir=snaps, resume=True,
        )
        assert np.array_equal(plain.labels, resumed.labels)
        assert plain.clusters == resumed.clusters
        assert plain.parameters["n_refreshes"] == resumed.parameters["n_refreshes"]

    def test_resume_of_completed_run_reproduces_result(
        self, basket_path, tmp_path
    ):
        snaps = tmp_path / "snaps"
        first = self._pipeline().run_online(
            basket_path, batch_size=32, snapshot_dir=snaps
        )
        resumed = self._pipeline().run_online(
            basket_path, batch_size=32, snapshot_dir=snaps, resume=True
        )
        assert np.array_equal(first.labels, resumed.labels)
        assert first.clusters == resumed.clusters

    def test_resume_with_different_batch_size_rejected(
        self, basket_path, tmp_path
    ):
        snaps = tmp_path / "snaps"
        self._pipeline().run_online(basket_path, batch_size=32, snapshot_dir=snaps)
        with pytest.raises(SnapshotConfigMismatchError, match="batch_size"):
            self._pipeline().run_online(
                basket_path, batch_size=16, snapshot_dir=snaps, resume=True
            )

    def test_resume_with_different_theta_rejected(self, basket_path, tmp_path):
        snaps = tmp_path / "snaps"
        self._pipeline().run_online(basket_path, batch_size=32, snapshot_dir=snaps)
        mismatched = RockPipeline(
            n_clusters=3, theta=0.5, sample_size=60, min_cluster_size=2, rng=5
        )
        with pytest.raises(SnapshotConfigMismatchError, match="theta"):
            mismatched.run_online(
                basket_path, batch_size=32, snapshot_dir=snaps, resume=True
            )

    def test_bare_session_checkpoint_rejected_by_pipeline_resume(
        self, tmp_path
    ):
        # A checkpoint created through PersistentSession directly carries
        # no online-pipeline bookkeeping; resuming it through run_online
        # must fail with a typed error, not mislabel the stream.
        PersistentSession.create(tmp_path, _session())
        pipeline = RockPipeline(n_clusters=2, theta=0.4, sample_size=6, rng=0)
        source = [list(batch) for batch in STREAM_BATCHES]
        flat = [t for batch in source for t in batch] + BOOTSTRAP
        with pytest.raises((SnapshotCorruptionError, SnapshotConfigMismatchError)):
            pipeline.run_online(
                flat, batch_size=4, snapshot_dir=tmp_path, resume=True
            )

    def test_snapshot_every_without_dir_rejected(self, basket_path):
        with pytest.raises(ConfigurationError):
            self._pipeline().run_online(basket_path, snapshot_every=2)

    def test_resume_without_dir_rejected(self, basket_path):
        with pytest.raises(ConfigurationError):
            self._pipeline().run_online(basket_path, resume=True)

    def test_env_failpoints_reach_the_snapshot_path(self, tmp_path):
        # The env-var spelling used by the CI fault-injection job.
        failpoints.load_from_env(
            {failpoints.ENV_VAR: "snapshot.before-rename*1"}
        )
        with pytest.raises(failpoints.InjectedFaultError):
            SessionSnapshot(_session()).save(tmp_path)
        SessionSnapshot(_session()).save(tmp_path)  # budget spent


# --------------------------------------------------------------------- #
# Atomic write helper
# --------------------------------------------------------------------- #
class TestAtomicWrite:
    def test_writes_content_and_leaves_no_tmp_files(self, tmp_path):
        from repro.data.io import atomic_write_text

        target = tmp_path / "out" / "file.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"
        assert [p.name for p in target.parent.iterdir()] == ["file.txt"]

    def test_failure_mid_write_preserves_previous_content(self, tmp_path):
        from repro.data.io import atomic_write

        target = tmp_path / "file.txt"
        target.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as handle:
                handle.write("partial")
                raise RuntimeError("killed mid-write")
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["file.txt"]

    def test_bytes_variant(self, tmp_path):
        from repro.data.io import atomic_write_bytes

        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"
