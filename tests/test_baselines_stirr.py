"""Tests for repro.baselines.stirr."""

import numpy as np
import pytest

from repro.baselines.stirr import Stirr, StirrResult
from repro.errors import ConfigurationError, ConvergenceError, DataValidationError
from repro.evaluation.metrics import clustering_error


@pytest.fixture
def polarised_records():
    """Records with two obvious value blocks (like a tiny Votes data set)."""
    return [("y", "y", "y", "n")] * 8 + [("n", "n", "n", "y")] * 8


class TestStirr:
    def test_revised_variant_converges(self, polarised_records):
        result = Stirr(revised=True, rng=0).fit(polarised_records)
        assert isinstance(result, StirrResult)
        assert result.converged
        assert result.n_iterations < 100

    def test_two_way_split_recovers_blocks(self, polarised_records):
        result = Stirr(revised=True, rng=0).fit(polarised_records)
        truth = [0] * 8 + [1] * 8
        assert clustering_error(result.labels, truth) == 0.0

    def test_value_weights_have_opposite_signs(self, polarised_records):
        result = Stirr(revised=True, rng=0).fit(polarised_records)
        weight_y = result.value_weights[(0, "y")]
        weight_n = result.value_weights[(0, "n")]
        assert weight_y * weight_n < 0

    def test_votes_like_quality(self, votes_small):
        result = Stirr(revised=True, rng=0).fit(votes_small)
        assert clustering_error(result.labels, votes_small.labels) < 0.3

    def test_fit_predict_returns_labels(self, polarised_records):
        labels = Stirr(revised=True, rng=0).fit_predict(polarised_records)
        assert set(np.unique(labels)) <= {0, 1}

    def test_label_zero_is_majority_group(self):
        records = [("y", "y")] * 10 + [("n", "n")] * 3
        result = Stirr(revised=True, rng=0).fit(records)
        assert np.sum(result.labels == 0) >= np.sum(result.labels == 1)

    def test_history_records_changes(self, polarised_records):
        result = Stirr(revised=True, rng=0).fit(polarised_records)
        assert len(result.history) == result.n_iterations
        assert all(change >= 0 for change in result.history)

    def test_classic_iteration_runs(self, polarised_records):
        result = Stirr(revised=False, max_iterations=20, rng=0).fit(polarised_records)
        assert result.n_iterations <= 20

    def test_product_combiner_supported(self, polarised_records):
        result = Stirr(combiner="product", revised=True, rng=0, max_iterations=50).fit(
            polarised_records
        )
        assert len(result.labels) == len(polarised_records)

    def test_strict_raises_without_convergence(self, polarised_records):
        with pytest.raises(ConvergenceError):
            Stirr(revised=False, max_iterations=1, strict=True, rng=0, tolerance=1e-15).fit(
                polarised_records
            )

    def test_missing_values_ignored(self):
        records = [("y", None), ("y", "y"), (None, "n"), ("n", "n")]
        result = Stirr(revised=True, rng=0).fit(records)
        assert len(result.labels) == 4

    def test_reproducible_with_seed(self, polarised_records):
        first = Stirr(revised=True, rng=5).fit(polarised_records).labels
        second = Stirr(revised=True, rng=5).fit(polarised_records).labels
        assert np.array_equal(first, second)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Stirr(combiner="bogus")
        with pytest.raises(ConfigurationError):
            Stirr(max_iterations=0)
        with pytest.raises(ConfigurationError):
            Stirr(tolerance=0.0)

    def test_empty_input_rejected(self):
        with pytest.raises(DataValidationError):
            Stirr().fit([])

    def test_all_missing_rejected(self):
        with pytest.raises(DataValidationError):
            Stirr().fit([(None, None)])
