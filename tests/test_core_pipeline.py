"""Tests for repro.core.pipeline (the sample/cluster/label pipeline)."""

import numpy as np
import pytest

from repro.core.pipeline import RockPipeline, RockPipelineResult, rock_cluster
from repro.data.encoding import records_to_transactions
from repro.errors import ConfigurationError
from repro.evaluation.metrics import clustering_error


class TestRockPipelineBasics:
    def test_full_data_clustering(self, two_group_transactions, two_group_labels):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        assert isinstance(result, RockPipelineResult)
        assert result.n_clusters == 2
        assert result.n_outliers == 0
        assert clustering_error(result.labels, two_group_labels) == 0.0

    def test_labels_align_with_clusters(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        for label, members in enumerate(result.clusters):
            for index in members:
                assert result.labels[index] == label

    def test_cluster_sizes_ordered(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        sizes = result.cluster_sizes()
        assert sizes == sorted(sizes, reverse=True)

    def test_timings_recorded(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        for phase in ("sampling", "neighbors", "clustering", "labeling", "total"):
            assert phase in result.timings
            assert result.timings[phase] >= 0

    def test_parameters_recorded(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        assert result.parameters["n_clusters"] == 2
        assert result.parameters["theta"] == 0.4

    def test_summaries(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        assert [s.size for s in result.summaries()] == result.cluster_sizes()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            RockPipeline(n_clusters=2, sample_size=0)
        with pytest.raises(ConfigurationError):
            RockPipeline(n_clusters=2, min_neighbors=-1)
        with pytest.raises(ConfigurationError):
            RockPipeline(n_clusters=2, min_cluster_size=0)


class TestSamplingAndLabeling:
    def test_sampled_run_labels_every_point(self, mushroom_small):
        dataset, groups = mushroom_small
        transactions = records_to_transactions(dataset)
        result = rock_cluster(
            transactions, n_clusters=8, theta=0.8, sample_size=90, rng=0
        )
        assert len(result.labels) == dataset.n_records
        assert len(result.sample_indices) == 90
        # The overwhelming majority of points must be assigned (not outliers).
        assert result.n_outliers < 0.1 * dataset.n_records

    def test_sampled_run_recovers_groups(self, mushroom_small):
        dataset, groups = mushroom_small
        transactions = records_to_transactions(dataset)
        result = rock_cluster(
            transactions, n_clusters=8, theta=0.8, sample_size=100,
            min_cluster_size=2, rng=3,
        )
        error = clustering_error(result.labels, dataset.labels)
        assert error < 0.15

    def test_sample_larger_than_data_clusters_everything(self, two_group_transactions):
        result = rock_cluster(
            two_group_transactions, n_clusters=2, theta=0.4, sample_size=100
        )
        assert result.sample_indices == list(range(6))

    def test_reproducible_with_seed(self, mushroom_small):
        dataset, _ = mushroom_small
        transactions = records_to_transactions(dataset)
        first = rock_cluster(transactions, n_clusters=8, theta=0.8, sample_size=80, rng=7)
        second = rock_cluster(transactions, n_clusters=8, theta=0.8, sample_size=80, rng=7)
        assert np.array_equal(first.labels, second.labels)


class TestOutlierHandling:
    def test_isolated_points_become_outliers(self):
        transactions = [
            {1, 2, 3}, {1, 2, 4}, {1, 3, 4},
            {7, 8, 9}, {7, 8, 10}, {7, 9, 10},
            {100, 101},  # isolated noise point
        ]
        result = rock_cluster(
            transactions, n_clusters=2, theta=0.4, min_neighbors=1
        )
        assert result.labels[6] == -1
        assert result.n_outliers == 1
        assert result.n_clusters == 2

    def test_min_cluster_size_prunes_tiny_clusters(self):
        transactions = [
            {1, 2, 3}, {1, 2, 4}, {1, 3, 4},
            {7, 8, 9}, {7, 8, 10}, {7, 9, 10},
            {50, 51}, {50, 52},  # a tiny pair far from both groups
        ]
        result = rock_cluster(
            transactions, n_clusters=3, theta=0.4, min_cluster_size=3
        )
        assert result.n_clusters == 2
        assert result.labels[6] == -1
        assert result.labels[7] == -1

    def test_all_points_isolated_falls_back_gracefully(self):
        transactions = [{1}, {2}, {3}]
        result = rock_cluster(
            transactions, n_clusters=2, theta=0.9, min_neighbors=1
        )
        assert len(result.labels) == 3

    def test_without_min_neighbors_no_prefilter(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4, min_neighbors=0)
        assert result.n_outliers == 0


class TestStreamingPipeline:
    @pytest.fixture
    def basket_file(self, tmp_path):
        from repro.data.io import write_transactions
        from repro.datasets.market_basket import generate_market_baskets

        baskets = generate_market_baskets(n_transactions=300, n_clusters=4, rng=2)
        path = tmp_path / "baskets.txt"
        write_transactions(baskets, path)
        return path

    def _pipeline(self, rng=7, **overrides):
        kwargs = dict(
            n_clusters=4, theta=0.4, sample_size=100,
            min_neighbors=1, min_cluster_size=2, rng=rng,
        )
        kwargs.update(overrides)
        return RockPipeline(**kwargs)

    def test_streaming_file_matches_in_memory_run(self, basket_file):
        from repro.data.io import read_transactions

        transactions = read_transactions(basket_file).transactions
        in_memory = self._pipeline().run(transactions)
        streamed = self._pipeline().run_streaming(basket_file, batch_size=64)
        assert np.array_equal(in_memory.labels, streamed.labels)
        assert in_memory.clusters == streamed.clusters
        assert in_memory.n_outliers == streamed.n_outliers

    @pytest.mark.parametrize("batch_size", [1, 17, 64, 1024])
    def test_batch_size_never_changes_labels(self, basket_file, batch_size):
        from repro.data.io import read_transactions

        transactions = read_transactions(basket_file).transactions
        in_memory = self._pipeline().run(transactions)
        streamed = self._pipeline().run_streaming(transactions, batch_size=batch_size)
        assert np.array_equal(in_memory.labels, streamed.labels)

    def test_callable_source(self, basket_file):
        from repro.data.io import read_transactions

        transactions = read_transactions(basket_file).transactions
        in_memory = self._pipeline().run(transactions)
        streamed = self._pipeline().run_streaming(
            lambda: iter(transactions), batch_size=50
        )
        assert np.array_equal(in_memory.labels, streamed.labels)

    def test_streaming_retained_incidence_built_once(self, basket_file, monkeypatch):
        # Inside the labelling phase, only per-batch encodings (which pass
        # ignore_unknown=True) may repeat; the retained-fraction incidence
        # must be built exactly once for the whole streaming run.
        import repro.core.labeling as labeling_module

        calls = {"retained": 0, "batch": 0}
        original = labeling_module.transactions_to_incidence

        def counting(*args, **kwargs):
            calls["batch" if kwargs.get("ignore_unknown") else "retained"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(labeling_module, "transactions_to_incidence", counting)
        result = self._pipeline().run_streaming(basket_file, batch_size=50)
        assert result.labeling_result is not None
        assert calls["retained"] == 1
        assert calls["batch"] >= 6  # 200 remainder points across 50-point batches

    def test_reservoir_mode_labels_everything(self, basket_file):
        result = self._pipeline().run_streaming(
            basket_file, batch_size=64, sample_method="reservoir"
        )
        assert len(result.labels) == 300
        assert len(result.sample_indices) == 100
        assert result.parameters["sample_method"] == "reservoir"
        # Reservoir draws a different (still uniform) sample, so only the
        # shape-level properties are pinned.
        assert result.n_clusters >= 1

    def test_streaming_records_parameters_and_timings(self, basket_file):
        result = self._pipeline().run_streaming(basket_file, batch_size=64)
        assert result.parameters["streaming"] is True
        assert result.parameters["batch_size"] == 64
        assert result.parameters["sample_method"] == "exact"
        for phase in ("sampling", "neighbors", "clustering", "labeling", "total"):
            assert phase in result.timings

    def test_streaming_without_sampling_clusters_everything(self, two_group_transactions):
        in_memory = RockPipeline(n_clusters=2, theta=0.4, rng=0).run(
            two_group_transactions
        )
        streamed = RockPipeline(n_clusters=2, theta=0.4, rng=0).run_streaming(
            two_group_transactions, batch_size=2
        )
        assert np.array_equal(in_memory.labels, streamed.labels)
        assert streamed.labeling_result is None
        assert streamed.labeled_indices is None

    def test_empty_source_rejected(self, tmp_path):
        from repro.errors import DataValidationError

        path = tmp_path / "empty.txt"
        path.write_text("\n")
        with pytest.raises(DataValidationError):
            self._pipeline().run_streaming(path)

    def test_invalid_streaming_configuration_rejected(self, basket_file):
        with pytest.raises(ConfigurationError):
            self._pipeline().run_streaming(basket_file, batch_size=0)
        with pytest.raises(ConfigurationError):
            self._pipeline().run_streaming(basket_file, sample_method="psychic")


class TestAssignOutliers:
    def _noise_setup(self):
        return [
            {1, 2, 3}, {1, 2, 4}, {1, 3, 4},
            {7, 8, 9}, {7, 8, 10}, {7, 9, 10}, {7, 8, 11},
            {100, 101},  # noise with no neighbour anywhere
        ]

    def test_flag_changes_outlier_placement(self):
        transactions = self._noise_setup()
        kept = rock_cluster(
            transactions, n_clusters=2, theta=0.4, min_neighbors=1,
            assign_outliers=True,
        )
        forced = rock_cluster(
            transactions, n_clusters=2, theta=0.4, min_neighbors=1,
            assign_outliers=False,
        )
        assert kept.labels[7] == -1
        assert kept.n_outliers == 1
        # The documented False behaviour: the no-neighbour point joins the
        # argmax raw-count cluster, which with all counts at zero is the
        # largest one (label 0 after the size sort).
        assert forced.labels[7] == 0
        assert forced.n_outliers == 0
        assert forced.parameters["assign_outliers"] is False

    def test_flag_recorded_and_threaded_through_streaming(self, tmp_path):
        from repro.data.io import write_transactions
        from repro.data.dataset import TransactionDataset

        transactions = self._noise_setup()
        path = tmp_path / "noise.txt"
        write_transactions(
            TransactionDataset([frozenset(map(str, t)) for t in transactions]), path
        )
        forced = RockPipeline(
            n_clusters=2, theta=0.4, min_neighbors=1, assign_outliers=False, rng=0
        ).run_streaming(path, batch_size=3)
        assert forced.n_outliers == 0


class TestLabelingResultLabelSpace:
    def test_labeling_result_matches_final_labels(self, mushroom_small):
        from repro.data.encoding import records_to_transactions

        dataset, _ = mushroom_small
        transactions = records_to_transactions(dataset)
        result = rock_cluster(
            transactions, n_clusters=8, theta=0.8, sample_size=90,
            min_cluster_size=2, rng=0,
        )
        assert result.labeling_result is not None
        assert result.labeled_indices is not None
        assert len(result.labeled_indices) == len(result.labeling_result.labels)
        # The remap must make the labelling pass agree 1:1 with the final
        # label space (this pinned a real bug: labels used to be indices
        # into the pre-sort kept_clusters).
        assert np.array_equal(
            result.labels[result.labeled_indices], result.labeling_result.labels
        )

    def test_neighbor_counts_columns_in_final_space(self, mushroom_small):
        from repro.data.encoding import records_to_transactions

        dataset, _ = mushroom_small
        transactions = records_to_transactions(dataset)
        result = rock_cluster(
            transactions, n_clusters=8, theta=0.8, sample_size=90,
            min_cluster_size=2, rng=0,
        )
        counts = result.labeling_result.neighbor_counts
        assert counts.shape[1] == result.n_clusters
        # Every labelled point must have a positive raw count in the column
        # of the cluster it was assigned to.
        labels = result.labeling_result.labels
        placed = labels >= 0
        assert np.all(counts[np.nonzero(placed)[0], labels[placed]] > 0)

    def test_streaming_labeling_result_matches_final_labels(self, mushroom_small):
        from repro.data.encoding import records_to_transactions

        dataset, _ = mushroom_small
        transactions = records_to_transactions(dataset)
        result = RockPipeline(
            n_clusters=8, theta=0.8, sample_size=90, min_cluster_size=2, rng=0
        ).run_streaming(transactions.transactions, batch_size=25)
        assert np.array_equal(
            result.labels[result.labeled_indices], result.labeling_result.labels
        )


class TestStreamingReaderOptions:
    def test_label_prefix_applied_to_path_source(self, tmp_path):
        from repro.data.io import read_transactions, write_transactions
        from repro.data.dataset import TransactionDataset
        from repro.datasets.market_basket import generate_market_baskets

        baskets = generate_market_baskets(n_transactions=150, n_clusters=3, rng=4)
        path = tmp_path / "labeled.txt"
        write_transactions(baskets, path, label_prefix="class=")
        transactions = read_transactions(path, label_prefix="class=").transactions
        kwargs = dict(n_clusters=3, theta=0.35, sample_size=60, rng=9)
        in_memory = RockPipeline(**kwargs).run(transactions)
        streamed = RockPipeline(**kwargs).run_streaming(
            path, batch_size=40, label_prefix="class="
        )
        # Without label_prefix threading, 'class=x' tokens would be
        # clustered as ordinary items and the labels would diverge.
        assert np.array_equal(in_memory.labels, streamed.labels)

    def test_reader_options_rejected_for_non_path_sources(self, two_group_transactions):
        pipeline = RockPipeline(n_clusters=2, theta=0.4, rng=0)
        with pytest.raises(ConfigurationError):
            pipeline.run_streaming(two_group_transactions, label_prefix="class=")
        with pytest.raises(ConfigurationError):
            pipeline.run_streaming(
                lambda: iter(two_group_transactions), delimiter=","
            )

    def test_streaming_labeling_result_counts_left_empty(self, two_group_transactions):
        # Streaming keeps only the labels: a dense per-point count matrix
        # would break the bounded-memory contract.
        result = RockPipeline(
            n_clusters=2, theta=0.4, sample_size=4, rng=1
        ).run_streaming(two_group_transactions, batch_size=2)
        assert result.labeling_result is not None
        assert result.labeling_result.neighbor_counts.shape[0] == 0
        assert len(result.labeling_result.labels) == len(result.labeled_indices)
