"""Tests for repro.core.pipeline (the sample/cluster/label pipeline)."""

import numpy as np
import pytest

from repro.core.pipeline import RockPipeline, RockPipelineResult, rock_cluster
from repro.data.encoding import records_to_transactions
from repro.errors import ConfigurationError
from repro.evaluation.metrics import clustering_error


class TestRockPipelineBasics:
    def test_full_data_clustering(self, two_group_transactions, two_group_labels):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        assert isinstance(result, RockPipelineResult)
        assert result.n_clusters == 2
        assert result.n_outliers == 0
        assert clustering_error(result.labels, two_group_labels) == 0.0

    def test_labels_align_with_clusters(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        for label, members in enumerate(result.clusters):
            for index in members:
                assert result.labels[index] == label

    def test_cluster_sizes_ordered(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        sizes = result.cluster_sizes()
        assert sizes == sorted(sizes, reverse=True)

    def test_timings_recorded(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        for phase in ("sampling", "neighbors", "clustering", "labeling", "total"):
            assert phase in result.timings
            assert result.timings[phase] >= 0

    def test_parameters_recorded(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        assert result.parameters["n_clusters"] == 2
        assert result.parameters["theta"] == 0.4

    def test_summaries(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4)
        assert [s.size for s in result.summaries()] == result.cluster_sizes()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            RockPipeline(n_clusters=2, sample_size=0)
        with pytest.raises(ConfigurationError):
            RockPipeline(n_clusters=2, min_neighbors=-1)
        with pytest.raises(ConfigurationError):
            RockPipeline(n_clusters=2, min_cluster_size=0)


class TestSamplingAndLabeling:
    def test_sampled_run_labels_every_point(self, mushroom_small):
        dataset, groups = mushroom_small
        transactions = records_to_transactions(dataset)
        result = rock_cluster(
            transactions, n_clusters=8, theta=0.8, sample_size=90, rng=0
        )
        assert len(result.labels) == dataset.n_records
        assert len(result.sample_indices) == 90
        # The overwhelming majority of points must be assigned (not outliers).
        assert result.n_outliers < 0.1 * dataset.n_records

    def test_sampled_run_recovers_groups(self, mushroom_small):
        dataset, groups = mushroom_small
        transactions = records_to_transactions(dataset)
        result = rock_cluster(
            transactions, n_clusters=8, theta=0.8, sample_size=100,
            min_cluster_size=2, rng=3,
        )
        error = clustering_error(result.labels, dataset.labels)
        assert error < 0.15

    def test_sample_larger_than_data_clusters_everything(self, two_group_transactions):
        result = rock_cluster(
            two_group_transactions, n_clusters=2, theta=0.4, sample_size=100
        )
        assert result.sample_indices == list(range(6))

    def test_reproducible_with_seed(self, mushroom_small):
        dataset, _ = mushroom_small
        transactions = records_to_transactions(dataset)
        first = rock_cluster(transactions, n_clusters=8, theta=0.8, sample_size=80, rng=7)
        second = rock_cluster(transactions, n_clusters=8, theta=0.8, sample_size=80, rng=7)
        assert np.array_equal(first.labels, second.labels)


class TestOutlierHandling:
    def test_isolated_points_become_outliers(self):
        transactions = [
            {1, 2, 3}, {1, 2, 4}, {1, 3, 4},
            {7, 8, 9}, {7, 8, 10}, {7, 9, 10},
            {100, 101},  # isolated noise point
        ]
        result = rock_cluster(
            transactions, n_clusters=2, theta=0.4, min_neighbors=1
        )
        assert result.labels[6] == -1
        assert result.n_outliers == 1
        assert result.n_clusters == 2

    def test_min_cluster_size_prunes_tiny_clusters(self):
        transactions = [
            {1, 2, 3}, {1, 2, 4}, {1, 3, 4},
            {7, 8, 9}, {7, 8, 10}, {7, 9, 10},
            {50, 51}, {50, 52},  # a tiny pair far from both groups
        ]
        result = rock_cluster(
            transactions, n_clusters=3, theta=0.4, min_cluster_size=3
        )
        assert result.n_clusters == 2
        assert result.labels[6] == -1
        assert result.labels[7] == -1

    def test_all_points_isolated_falls_back_gracefully(self):
        transactions = [{1}, {2}, {3}]
        result = rock_cluster(
            transactions, n_clusters=2, theta=0.9, min_neighbors=1
        )
        assert len(result.labels) == 3

    def test_without_min_neighbors_no_prefilter(self, two_group_transactions):
        result = rock_cluster(two_group_transactions, n_clusters=2, theta=0.4, min_neighbors=0)
        assert result.n_outliers == 0
