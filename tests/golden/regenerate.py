"""Golden-fixture definitions and regeneration script.

Each case runs one pipeline execution mode — in-memory ``run``, streaming,
sharded, online, and online-with-refresh — on the same small seeded
mushroom-like slice and records the exact labels and cluster summary as a
committed JSON fixture.  ``tests/test_golden.py`` re-runs every case and
diffs the outcome against the fixture, so *any* behavioural drift in the
label pipeline (sampling, clustering, labelling, merge, splice order, RNG
consumption) fails loudly rather than slipping through as a silent quality
change.  Every future execution mode should add a case here.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/golden/regenerate.py

and commit the diff together with the change that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.pipeline import RockPipeline
from repro.core.rock import as_transactions
from repro.data.io import atomic_write_text
from repro.datasets.mushroom import generate_mushroom_like

GOLDEN_DIR = Path(__file__).resolve().parent

#: Shape of the mushroom-like slice every case clusters: 8 uneven latent
#: groups, 180 records, fixed generator seed.
DATASET_PARAMS = dict(
    group_sizes_edible=(40, 25, 15, 10),
    group_sizes_poisonous=(35, 30, 20, 5),
    rng=11,
)

#: Pipeline parameters shared by every case (the paper's mushroom theta).
PIPELINE_PARAMS = dict(
    n_clusters=8,
    theta=0.8,
    sample_size=120,
    min_cluster_size=2,
    rng=0,
)

BATCH_SIZE = 32


def golden_transactions() -> list[frozenset]:
    """The mushroom-slice transactions every golden case clusters."""
    dataset = generate_mushroom_like(**DATASET_PARAMS)
    return as_transactions(dataset)


def _pipeline() -> RockPipeline:
    return RockPipeline(**PIPELINE_PARAMS)


def run_case(mode: str):
    """Execute one golden case; returns its ``RockPipelineResult``."""
    transactions = golden_transactions()
    if mode == "run":
        return _pipeline().run(transactions)
    if mode == "streaming":
        return _pipeline().run_streaming(transactions, batch_size=BATCH_SIZE)
    if mode == "sharded":
        return _pipeline().run_sharded(
            transactions, n_shards=2, batch_size=BATCH_SIZE
        )
    if mode == "online":
        return _pipeline().run_online(transactions, batch_size=BATCH_SIZE)
    if mode == "online_refresh":
        return _pipeline().run_online(
            transactions, batch_size=BATCH_SIZE, refresh_threshold=0.25
        )
    raise ValueError("unknown golden mode %r" % mode)


#: Every committed case, in fixture-file order.
MODES = ("run", "streaming", "sharded", "online", "online_refresh")


def summarize(mode: str, result) -> dict:
    """The committed shape of one case: labels + cluster summary."""
    summary = {
        "mode": mode,
        "dataset": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in DATASET_PARAMS.items()
        },
        "pipeline": dict(PIPELINE_PARAMS),
        "batch_size": BATCH_SIZE,
        "labels": [int(label) for label in result.labels],
        "cluster_sizes": [int(size) for size in result.cluster_sizes()],
        "n_clusters": int(result.n_clusters),
        "n_outliers": int(result.n_outliers),
    }
    if mode == "online_refresh":
        summary["n_refreshes"] = int(result.parameters["n_refreshes"])
    return summary


def fixture_path(mode: str) -> Path:
    return GOLDEN_DIR / ("%s.json" % mode)


def main() -> None:
    for mode in MODES:
        payload = summarize(mode, run_case(mode))
        atomic_write_text(
            fixture_path(mode), json.dumps(payload, indent=2) + "\n"
        )
        print(
            "wrote %s: %d clusters, %d outliers"
            % (fixture_path(mode).name, payload["n_clusters"], payload["n_outliers"])
        )


if __name__ == "__main__":
    main()
