"""Golden-fixture definitions and regeneration script.

Each case runs one pipeline execution mode — in-memory ``run``, streaming,
sharded, online, and online-with-refresh — on the same small seeded
mushroom-like slice and records the exact labels and cluster summary as a
committed JSON fixture.  The ``serve`` case additionally drives a scripted
request sequence against an in-process :class:`repro.serve.server.ReproServer`
over a real socket and records every request/response frame (decoded *and*
as exact wire bytes), pinning the protocol surface byte for byte.  ``tests/test_golden.py`` re-runs every case and
diffs the outcome against the fixture, so *any* behavioural drift in the
label pipeline (sampling, clustering, labelling, merge, splice order, RNG
consumption) fails loudly rather than slipping through as a silent quality
change.  Every future execution mode should add a case here.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/golden/regenerate.py

and commit the diff together with the change that caused it.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.core.pipeline import RockPipeline
from repro.core.rock import as_transactions
from repro.data.io import atomic_write_text
from repro.datasets.mushroom import generate_mushroom_like
from repro.serve.protocol import encode_frame, encode_transaction, read_frame, write_frame
from repro.serve.server import ReproServer

GOLDEN_DIR = Path(__file__).resolve().parent

#: Shape of the mushroom-like slice every case clusters: 8 uneven latent
#: groups, 180 records, fixed generator seed.
DATASET_PARAMS = dict(
    group_sizes_edible=(40, 25, 15, 10),
    group_sizes_poisonous=(35, 30, 20, 5),
    rng=11,
)

#: Pipeline parameters shared by every case (the paper's mushroom theta).
PIPELINE_PARAMS = dict(
    n_clusters=8,
    theta=0.8,
    sample_size=120,
    min_cluster_size=2,
    rng=0,
)

BATCH_SIZE = 32

#: The serve case bootstraps on this prefix; the rest arrives over the wire.
SERVE_BOUNDARY = 140

#: Wire-ingest batch size of the serve case (two batches over the tail).
SERVE_BATCH = 20


def golden_transactions() -> list[frozenset]:
    """The mushroom-slice transactions every golden case clusters."""
    dataset = generate_mushroom_like(**DATASET_PARAMS)
    return as_transactions(dataset)


def _pipeline() -> RockPipeline:
    return RockPipeline(**PIPELINE_PARAMS)


def serve_transactions() -> list[frozenset]:
    """The golden slice with wire-safe items.

    The mushroom items are ``(column, value)`` tuples, which the JSON
    protocol refuses (transaction items must be scalars), so the serve
    case maps each to the string ``"column=value"`` — a bijection, hence
    the same similarity structure — and uses that alphabet on both sides:
    to bootstrap the served session and in every wire frame.
    """
    return [
        frozenset("%d=%s" % (column, value) for column, value in transaction)
        for transaction in golden_transactions()
    ]


def _serve_requests(transactions: list[frozenset]) -> list[dict]:
    """The scripted request sequence of the serve transcript.

    Covers every verb plus two typed error frames (snapshot without a
    store, an unknown verb), so the fixture pins the full wire surface.
    """
    tail = transactions[SERVE_BOUNDARY:]
    requests: list[dict] = [{"verb": "status"}]
    for transaction in tail[:3]:
        requests.append(
            {"verb": "label", "transaction": encode_transaction(transaction)}
        )
    for start in range(0, len(tail), SERVE_BATCH):
        requests.append(
            {
                "verb": "ingest",
                "batch": [
                    encode_transaction(transaction)
                    for transaction in tail[start:start + SERVE_BATCH]
                ],
            }
        )
    requests.append({"verb": "snapshot"})  # typed error: no store attached
    requests.append({"verb": "frobnicate"})  # typed error: unknown verb
    requests.append({"verb": "status"})
    requests.append({"verb": "shutdown"})
    return requests


async def _serve_transcript() -> list[dict]:
    """Drive an in-process server over a real socket; record every frame.

    The recorded ``*_frame`` hex strings are the exact wire bytes (the
    codec is canonical — sorted keys, no whitespace — so re-encoding the
    decoded response reproduces what the server sent byte for byte).
    """
    transactions = serve_transactions()
    pipeline = _pipeline()
    pipeline.run_online(transactions[:SERVE_BOUNDARY], batch_size=BATCH_SIZE)
    server = ReproServer(pipeline.online_session)
    await server.start()
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    transcript = []
    for request in _serve_requests(transactions):
        await write_frame(writer, request)
        response = await read_frame(reader)
        transcript.append(
            {
                "request": request,
                "request_frame": encode_frame(request).hex(),
                "response": response,
                "response_frame": encode_frame(response).hex(),
            }
        )
    writer.close()
    await writer.wait_closed()
    await server.serve_forever()
    return transcript


def run_case(mode: str):
    """Execute one golden case.

    Pipeline modes return their ``RockPipelineResult``; the ``serve`` mode
    returns the recorded request/response transcript.
    """
    transactions = golden_transactions()
    if mode == "serve":
        return asyncio.run(_serve_transcript())
    if mode == "run":
        return _pipeline().run(transactions)
    if mode == "streaming":
        return _pipeline().run_streaming(transactions, batch_size=BATCH_SIZE)
    if mode == "sharded":
        return _pipeline().run_sharded(
            transactions, n_shards=2, batch_size=BATCH_SIZE
        )
    if mode == "online":
        return _pipeline().run_online(transactions, batch_size=BATCH_SIZE)
    if mode == "online_refresh":
        return _pipeline().run_online(
            transactions, batch_size=BATCH_SIZE, refresh_threshold=0.25
        )
    raise ValueError("unknown golden mode %r" % mode)


#: Every committed case, in fixture-file order.
MODES = ("run", "streaming", "sharded", "online", "online_refresh", "serve")


def summarize(mode: str, result) -> dict:
    """The committed shape of one case: labels + cluster summary."""
    if mode == "serve":
        return {
            "mode": mode,
            "dataset": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in DATASET_PARAMS.items()
            },
            "pipeline": dict(PIPELINE_PARAMS),
            "batch_size": BATCH_SIZE,
            "boundary": SERVE_BOUNDARY,
            "serve_batch": SERVE_BATCH,
            "transcript": result,
        }
    summary = {
        "mode": mode,
        "dataset": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in DATASET_PARAMS.items()
        },
        "pipeline": dict(PIPELINE_PARAMS),
        "batch_size": BATCH_SIZE,
        "labels": [int(label) for label in result.labels],
        "cluster_sizes": [int(size) for size in result.cluster_sizes()],
        "n_clusters": int(result.n_clusters),
        "n_outliers": int(result.n_outliers),
    }
    if mode == "online_refresh":
        summary["n_refreshes"] = int(result.parameters["n_refreshes"])
    return summary


def fixture_path(mode: str) -> Path:
    return GOLDEN_DIR / ("%s.json" % mode)


def main() -> None:
    for mode in MODES:
        payload = summarize(mode, run_case(mode))
        atomic_write_text(
            fixture_path(mode), json.dumps(payload, indent=2) + "\n"
        )
        if mode == "serve":
            print(
                "wrote %s: %d request/response frames"
                % (fixture_path(mode).name, len(payload["transcript"]))
            )
        else:
            print(
                "wrote %s: %d clusters, %d outliers"
                % (
                    fixture_path(mode).name,
                    payload["n_clusters"],
                    payload["n_outliers"],
                )
            )


if __name__ == "__main__":
    main()
