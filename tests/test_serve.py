"""Test harness for the serving front end (:mod:`repro.serve`).

Covers the ISSUE-8 archetype surface:

* protocol codec round-trips and malformed / truncated / oversized frame
  error paths (both the pure codec and the live server's answers);
* the served bit-contract: labels returned over the wire are identical to
  driving the same schedule through ``RockPipeline.run_online`` +
  ``ingest`` directly, including across a snapshot/restore;
* concurrent clients (N labelers + 1 ingester through ``asyncio.gather``)
  matching single-client results;
* the bounded-memory live mode (eviction to label-only status);
* failpoint-injected kill-during-ingest followed by resume recovery
  (:mod:`repro.persistence.failpoints`), plus an end-to-end CLI
  subprocess round-trip of ``repro serve``.
"""

from __future__ import annotations

import asyncio
import os
import struct
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bench.engine_bench import WORKLOAD
from repro.core.pipeline import RockPipeline
from repro.datasets.market_basket import generate_market_baskets
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    ServeError,
)
from repro.persistence import failpoints
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.server import ReproServer

N_POINTS = 260
BOUNDARY = 200
BATCH = 20
PIPELINE_PARAMS = dict(
    n_clusters=4, theta=0.5, sample_size=120, min_cluster_size=2, rng=0
)


@pytest.fixture(scope="module")
def transactions():
    data = generate_market_baskets(n_transactions=N_POINTS, rng=0, **WORKLOAD)
    return data.transactions


def bootstrap_pipeline(transactions) -> RockPipeline:
    """A pipeline with a live session over the first ``BOUNDARY`` points."""
    pipeline = RockPipeline(**PIPELINE_PARAMS)
    pipeline.run_online(transactions[:BOUNDARY], batch_size=64)
    return pipeline


def tail_batches(transactions):
    return [
        transactions[start:start + BATCH]
        for start in range(BOUNDARY, len(transactions), BATCH)
    ]


def reference_tail_labels(transactions) -> list[list[int]]:
    """The no-server ground truth: run_online then direct ingest calls."""
    pipeline = bootstrap_pipeline(transactions)
    return [
        [int(label) for label in pipeline.ingest(batch).labels]
        for batch in tail_batches(transactions)
    ]


# ----------------------------------------------------------------------- #
# Protocol codec
# ----------------------------------------------------------------------- #
class TestProtocol:
    def test_round_trip_is_canonical(self):
        payload = {"verb": "label", "transaction": [1, 2, 3], "z": None}
        frame = protocol.encode_frame(payload)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert protocol.decode_frame(frame[4:]) == payload
        # Canonical encoding: key order never changes the bytes.
        assert frame == protocol.encode_frame(
            {"z": None, "transaction": [1, 2, 3], "verb": "label"}
        )

    def test_unserialisable_payload_raises(self):
        with pytest.raises(ProtocolError):
            protocol.encode_frame({"verb": object()})

    def test_oversized_frame_refused_on_encode(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ProtocolError):
            protocol.encode_frame({"verb": "x" * 64})

    def test_decode_rejects_bad_json_and_non_objects(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"{not json")
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"[1, 2]")
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"\xff\xfe")

    def test_error_class_mapping(self):
        assert protocol.error_class("ConfigurationError") is ConfigurationError
        assert protocol.error_class("ProtocolError") is ProtocolError
        # Unknown kinds and non-ReproError names degrade to ServeError.
        assert protocol.error_class("NoSuchError") is ServeError
        assert protocol.error_class("ReproError") is ReproError
        assert protocol.error_class("Path") is ServeError

    def test_raise_error_frame_restores_type_and_message(self):
        frame = protocol.error_frame(ConfigurationError("bad theta"))
        with pytest.raises(ConfigurationError, match="bad theta"):
            protocol.raise_error_frame(frame)

    def _reader_with(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_read_frame_clean_eof_returns_none(self):
        async def scenario():
            return await protocol.read_frame(self._reader_with(b""))

        assert asyncio.run(scenario()) is None

    def test_read_frame_torn_header(self):
        async def scenario():
            await protocol.read_frame(self._reader_with(b"\x00\x00"))

        with pytest.raises(ProtocolError, match="frame header"):
            asyncio.run(scenario())

    def test_read_frame_torn_body(self):
        async def scenario():
            data = struct.pack(">I", 10) + b"{}"
            await protocol.read_frame(self._reader_with(data))

        with pytest.raises(ProtocolError, match="frame body"):
            asyncio.run(scenario())

    def test_read_frame_oversized_length(self):
        async def scenario():
            data = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
            await protocol.read_frame(self._reader_with(data))

        with pytest.raises(ProtocolError, match="exceeds"):
            asyncio.run(scenario())

    def test_encode_transaction_deterministic(self):
        assert protocol.encode_transaction({3, 1, 2}) == [1, 2, 3]
        assert protocol.encode_transaction(frozenset(["b", "a"])) == ["a", "b"]


# ----------------------------------------------------------------------- #
# Server basics: verbs, typed errors, protocol misuse against a live socket
# ----------------------------------------------------------------------- #
class TestServerBasics:
    def test_label_matches_session_and_ingest_matches_run_online(
        self, transactions, tmp_path
    ):
        expected = reference_tail_labels(transactions)
        # An independent twin answers what label_only would say directly.
        twin = bootstrap_pipeline(transactions).online_session

        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer.create(
                pipeline.online_session, tmp_path / "snap"
            )
            await server.start()
            observed = []
            async with await ServeClient.connect(*server.address) as client:
                labels_direct = [
                    int(label)
                    for label in twin.label_only(transactions[BOUNDARY:BOUNDARY + 5])
                ]
                labels_wire = [
                    await client.label(t)
                    for t in transactions[BOUNDARY:BOUNDARY + 5]
                ]
                assert labels_wire == labels_direct
                for batch in tail_batches(transactions):
                    ack = await client.ingest(batch)
                    observed.append(ack["labels"])
                status = await client.status()
                await client.shutdown()
            await server.serve_forever()
            return observed, status

        observed, status = asyncio.run(scenario())
        assert observed == expected
        assert status["n_served_labels"] == 5
        assert status["n_served_ingests"] == len(expected)
        assert status["durable"] is True
        assert status["n_points"] > BOUNDARY - PIPELINE_PARAMS["sample_size"]
        assert status["n_refreshes"] == 0
        assert status["max_live_points"] is None

    def test_label_traffic_does_not_perturb_ingest_labels(self, transactions):
        expected = reference_tail_labels(transactions)

        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer(pipeline.online_session)
            await server.start()
            observed = []
            async with await ServeClient.connect(*server.address) as client:
                for batch in tail_batches(transactions):
                    # Interleave label reads before every ingest.
                    for transaction in batch[:3]:
                        await client.label(transaction)
                    observed.append((await client.ingest(batch))["labels"])
            await server.stop()
            return observed

        assert asyncio.run(scenario()) == expected

    def test_snapshot_verb_and_restart_continue_bit_identically(
        self, transactions, tmp_path
    ):
        expected = reference_tail_labels(transactions)
        batches = tail_batches(transactions)
        split = len(batches) // 2 or 1

        async def first_run():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer.create(pipeline.online_session, tmp_path / "snap")
            await server.start()
            observed = []
            async with await ServeClient.connect(*server.address) as client:
                for batch in batches[:split]:
                    observed.append((await client.ingest(batch))["labels"])
                ack = await client.snapshot()
                assert Path(ack["path"]).exists()
                await client.shutdown()
            await server.serve_forever()
            return observed

        async def second_run():
            server = ReproServer.resume(tmp_path / "snap")
            await server.start()
            observed = []
            async with await ServeClient.connect(*server.address) as client:
                for batch in batches[split:]:
                    observed.append((await client.ingest(batch))["labels"])
                await client.shutdown()
            await server.serve_forever()
            return observed

        observed = asyncio.run(first_run()) + asyncio.run(second_run())
        assert observed == expected

    def test_unknown_verb_is_typed_and_connection_survives(self, transactions):
        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer(pipeline.online_session)
            await server.start()
            async with await ServeClient.connect(*server.address) as client:
                with pytest.raises(ProtocolError, match="unknown verb"):
                    await client.request({"verb": "frobnicate"})
                # The connection stays usable after a request-level error.
                status = await client.status()
                assert status["ok"] is True
                with pytest.raises(ProtocolError, match="transaction"):
                    await client.request({"verb": "label", "transaction": "x"})
                with pytest.raises(ProtocolError, match="batch"):
                    await client.request({"verb": "ingest", "batch": 7})
                with pytest.raises(ProtocolError, match="scalars"):
                    await client.request(
                        {"verb": "ingest", "batch": [[["nested"]]]}
                    )
                assert (await client.status())["ok"] is True
            await server.stop()

        asyncio.run(scenario())

    def test_malformed_frame_gets_error_frame_then_close(self, transactions):
        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer(pipeline.online_session)
            await server.start()
            reader, writer = await asyncio.open_connection(*server.address)
            body = b"{broken json"
            writer.write(struct.pack(">I", len(body)) + body)
            await writer.drain()
            response = await protocol.read_frame(reader)
            assert response["ok"] is False
            assert response["error"]["kind"] == "ProtocolError"
            # The server hangs up after a codec error.
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()
            await server.stop()

        asyncio.run(scenario())

    def test_oversized_announced_frame_refused(self, transactions):
        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer(pipeline.online_session)
            await server.start()
            reader, writer = await asyncio.open_connection(*server.address)
            writer.write(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            await writer.drain()
            response = await protocol.read_frame(reader)
            assert response["error"]["kind"] == "ProtocolError"
            assert "exceeds" in response["error"]["message"]
            writer.close()
            await writer.wait_closed()
            await server.stop()

        asyncio.run(scenario())

    def test_snapshot_without_store_is_typed_configuration_error(
        self, transactions
    ):
        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer(pipeline.online_session)
            await server.start()
            async with await ServeClient.connect(*server.address) as client:
                with pytest.raises(ConfigurationError, match="snapshot"):
                    await client.snapshot()
            await server.stop()

        asyncio.run(scenario())

    def test_constructor_validation(self, transactions):
        session = bootstrap_pipeline(transactions).online_session
        with pytest.raises(ConfigurationError):
            ReproServer(session, port=65536)
        with pytest.raises(ConfigurationError):
            ReproServer(session, port=-1)
        with pytest.raises(ConfigurationError):
            ReproServer(session, max_live_points=0)
        with pytest.raises(ConfigurationError):
            ReproServer(session, max_coalesce=0)
        with pytest.raises(ConfigurationError):
            ReproServer(session, snapshot_interval=0.0)
        with pytest.raises(ConfigurationError, match="persistent store"):
            ReproServer(session, snapshot_interval=1.0)

    def test_shutdown_writes_final_checkpoint(self, transactions, tmp_path):
        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer.create(pipeline.online_session, tmp_path / "snap")
            await server.start()
            async with await ServeClient.connect(*server.address) as client:
                await client.ingest(transactions[BOUNDARY:BOUNDARY + BATCH])
                ack = await client.shutdown()
                assert ack["closing"] is True
                assert ack["checkpoint"] is not None
            await server.serve_forever()
            return server

        server = asyncio.run(scenario())
        assert server.store.closed is True
        assert server.store.n_snapshots == 2  # checkpoint 0 + final


# ----------------------------------------------------------------------- #
# Concurrency: N labelers + 1 ingester
# ----------------------------------------------------------------------- #
class TestConcurrency:
    N_LABELERS = 4

    def test_concurrent_clients_match_single_client_results(self, transactions):
        expected_ingest = reference_tail_labels(transactions)
        twin = bootstrap_pipeline(transactions).online_session
        label_queries = transactions[BOUNDARY:BOUNDARY + 12]
        expected_labels = [int(x) for x in twin.label_only(label_queries)]

        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer(pipeline.online_session)
            await server.start()

            async def labeler(worker: int):
                async with await ServeClient.connect(*server.address) as client:
                    results = []
                    for transaction in label_queries:
                        results.append(await client.label(transaction))
                    return results

            async def ingester():
                async with await ServeClient.connect(*server.address) as client:
                    results = []
                    for batch in tail_batches(transactions):
                        results.append((await client.ingest(batch))["labels"])
                    return results

            outcomes = await asyncio.gather(
                ingester(),
                *(labeler(worker) for worker in range(self.N_LABELERS)),
            )
            await server.stop()
            return outcomes

        ingested, *labelled = asyncio.run(scenario())
        # The ingester sees exactly the single-client / no-server labels
        # (per-connection order is preserved through the coalescer)...
        assert ingested == expected_ingest
        # ...and every concurrent labeler sees the same labels a lone
        # client would, however the traffic interleaved.
        for worker_results in labelled:
            assert worker_results == expected_labels

    def test_coalescer_merges_queued_batches_preserving_order(self, transactions):
        """Pre-queued ingests splice as ONE group with per-request slices.

        Drives the writer loop directly (no sockets) so the queue state is
        deterministic: every batch is enqueued before the writer runs, so
        the whole backlog coalesces into a single WAL append + splice, and
        the split-invariance contract makes the sliced-out labels
        bit-identical to batch-at-a-time ingestion.
        """
        from repro.serve.server import _WriteRequest

        expected = reference_tail_labels(transactions)
        batches = tail_batches(transactions)

        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer(pipeline.online_session, max_coalesce=64)
            server._queue = asyncio.Queue()
            requests = [_WriteRequest("ingest", batch) for batch in batches]
            for request in requests:
                server._queue.put_nowait(request)
            stop = _WriteRequest("shutdown")
            server._queue.put_nowait(stop)
            drain = asyncio.create_task(server._drain_writes())
            acks = [await request.future for request in requests]
            await stop.future
            await drain
            return acks

        acks = asyncio.run(scenario())
        assert [ack["labels"] for ack in acks] == expected
        # The whole backlog went through one splice.
        assert all(ack["coalesced"] == len(batches) for ack in acks)


# ----------------------------------------------------------------------- #
# Bounded-memory live mode
# ----------------------------------------------------------------------- #
class TestEviction:
    def test_eviction_bounds_live_points_without_changing_labels(
        self, transactions
    ):
        expected = reference_tail_labels(transactions)

        async def scenario():
            pipeline = bootstrap_pipeline(transactions)
            bound = pipeline.online_session.n_points + 10
            server = ReproServer(pipeline.online_session, max_live_points=bound)
            await server.start()
            observed = []
            async with await ServeClient.connect(*server.address) as client:
                for batch in tail_batches(transactions):
                    observed.append((await client.ingest(batch))["labels"])
                status = await client.status()
            await server.stop()
            return observed, status, bound

        observed, status, bound = asyncio.run(scenario())
        assert observed == expected
        assert status["n_points"] <= bound
        assert status["n_evicted"] > 0
        assert status["max_live_points"] == bound

    def test_evict_oldest_unit_semantics(self, transactions):
        session = bootstrap_pipeline(transactions).online_session
        n_live = session.n_points
        assert session.evict_oldest(0) == 0
        assert session.evict_oldest(-3) == 0
        with pytest.raises(ConfigurationError, match="survive"):
            session.evict_oldest(n_live)
        assert session.evict_oldest(5) == 5
        assert session.n_points == n_live - 5
        # Survivors still partition into clusters.
        members = sorted(
            index for cluster in session.live_clusters() for index in cluster
        )
        assert members == list(range(session.n_points))

    def test_eviction_state_survives_snapshot_roundtrip(self, transactions):
        from repro.core.incremental import IncrementalRock

        session = bootstrap_pipeline(transactions).online_session
        session.evict_oldest(7)
        restored = IncrementalRock.from_session_state(session.session_state())
        batch = transactions[BOUNDARY:BOUNDARY + BATCH]
        np.testing.assert_array_equal(
            restored.ingest(batch).labels, session.ingest(batch).labels
        )


# ----------------------------------------------------------------------- #
# Failpoint crash + resume recovery
# ----------------------------------------------------------------------- #
class TestRecovery:
    def test_kill_during_ingest_then_resume_is_bit_identical(
        self, transactions, tmp_path
    ):
        expected = reference_tail_labels(transactions)
        batches = tail_batches(transactions)
        crash_at = len(batches) // 2

        async def serve_until_crash():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer.create(pipeline.online_session, tmp_path / "snap")
            checkpoints_before = server.store.n_snapshots
            await server.start()
            observed = []
            client = await ServeClient.connect(*server.address)
            for batch in batches[:crash_at]:
                observed.append((await client.ingest(batch))["labels"])
            failpoints.activate("wal.torn-append", times=1)
            # The injected fault fires inside the WAL append — before any
            # session mutation — and kills the writer task like a process
            # crash: the client sees the connection die un-acked.
            with pytest.raises(ProtocolError):
                await client.ingest(batches[crash_at])
            # Fresh connections are refused writes until a resume.
            refused = await ServeClient.connect(*server.address)
            with pytest.raises(ServeError, match="writer task has died"):
                await refused.ingest(batches[crash_at])
            await refused.aclose()
            await client.aclose()
            await server.stop()
            # A crashed server never writes a final "clean" checkpoint.
            assert server.store.n_snapshots == checkpoints_before
            return observed

        async def resume_and_finish():
            server = ReproServer.resume(tmp_path / "snap")
            # The un-acked batch was never applied; the acked prefix came
            # back via WAL replay.
            assert server.store.n_replayed == crash_at
            await server.start()
            observed = []
            async with await ServeClient.connect(*server.address) as client:
                for batch in batches[crash_at:]:
                    observed.append((await client.ingest(batch))["labels"])
                await client.shutdown()
            await server.serve_forever()
            return observed

        failpoints.reset()
        try:
            observed = asyncio.run(serve_until_crash())
            observed += asyncio.run(resume_and_finish())
        finally:
            failpoints.reset()
        assert observed == expected

    def test_resume_restores_serve_counters(self, transactions, tmp_path):
        async def first():
            pipeline = bootstrap_pipeline(transactions)
            server = ReproServer.create(pipeline.online_session, tmp_path / "snap")
            await server.start()
            async with await ServeClient.connect(*server.address) as client:
                await client.label(transactions[BOUNDARY])
                await client.ingest(transactions[BOUNDARY:BOUNDARY + BATCH])
                await client.shutdown()
            await server.serve_forever()

        asyncio.run(first())
        server = ReproServer.resume(tmp_path / "snap")
        assert server.n_served_ingests == 1
        assert server.n_served_labels == 1


# ----------------------------------------------------------------------- #
# CLI end-to-end: subprocess serve + client round-trip + --resume
# ----------------------------------------------------------------------- #
class TestServeCliEndToEnd:
    @staticmethod
    def _write_baskets(path: Path, transactions) -> None:
        lines = [
            " ".join(str(item) for item in sorted(t, key=repr))
            for t in transactions
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    @staticmethod
    def _spawn(arguments, repo_root: Path) -> subprocess.Popen:
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(repo_root / "src") + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else ""
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *arguments],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=environment,
            cwd=repo_root,
        )

    @staticmethod
    def _await_port(process: subprocess.Popen) -> tuple[str, int]:
        while True:
            line = process.stdout.readline()
            assert line, "server exited before announcing its port"
            if "listening on" in line:
                address = line.rsplit(" ", 1)[1].strip()
                host, port = address.rsplit(":", 1)
                return host, int(port)

    @classmethod
    def _run_leg(cls, arguments, repo_root, ingest_from, drive):
        """One server subprocess lifetime: spawn, drive, assert clean exit."""
        process = cls._spawn(arguments, repo_root)
        try:
            host, port = cls._await_port(process)
            status = asyncio.run(drive(host, port, ingest_from))
        finally:
            tail = process.stdout.read()
            process.stdout.close()
            returncode = process.wait(timeout=60)
        assert returncode == 0, "server exited %d; output tail:\n%s" % (
            returncode,
            tail,
        )
        return status

    def test_serve_cli_round_trip_and_resume(self, transactions, tmp_path):
        repo_root = Path(__file__).resolve().parent.parent
        data_file = tmp_path / "baskets.txt"
        self._write_baskets(data_file, transactions[:BOUNDARY])
        snapshot_dir = tmp_path / "snap"
        base_arguments = [
            "serve", str(data_file),
            "--clusters", "4", "--theta", "0.5", "--sample-size", "120",
            "--min-cluster-size", "2", "--batch-size", "64",
            "--snapshot-dir", str(snapshot_dir),
        ]

        async def drive(host, port, ingest_from):
            async with await ServeClient.connect(host, port) as client:
                label = await client.label(
                    [str(item) for item in sorted(transactions[BOUNDARY], key=repr)]
                )
                assert isinstance(label, int)
                batch = [
                    [str(item) for item in sorted(t, key=repr)]
                    for t in transactions[ingest_from:ingest_from + BATCH]
                ]
                ack = await client.ingest(batch)
                assert len(ack["labels"]) == BATCH
                status = await client.status()
                await client.shutdown()
                return status

        first_status = self._run_leg(base_arguments, repo_root, BOUNDARY, drive)
        second_status = self._run_leg(
            base_arguments + ["--resume"], repo_root, BOUNDARY + BATCH, drive
        )

        # The resumed server continued the same session: its ingest count
        # includes the pre-restart traffic.
        assert second_status["n_ingested"] == first_status["n_ingested"] + BATCH
        assert second_status["n_served_ingests"] == 2
