"""Golden regression tests: every execution mode vs its committed fixture.

The fixtures under ``tests/golden/`` pin the exact labels and cluster
summaries of small seeded runs of all pipeline modes (in-memory /
streaming / sharded / online / online-with-refresh) on a mushroom-dataset
slice, plus the full request/response wire transcript of a scripted
``repro.serve`` session (the ``serve`` fixture, diffed byte for byte).  A failure here means the label pipeline's observable behaviour
changed; if the change is intentional, regenerate with::

    PYTHONPATH=src python tests/golden/regenerate.py

and commit the updated fixtures with the change.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "golden_regenerate", GOLDEN_DIR / "regenerate.py"
)
golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden)


@pytest.mark.parametrize("mode", golden.MODES)
def test_mode_matches_committed_fixture(mode):
    path = golden.fixture_path(mode)
    assert path.is_file(), (
        "missing golden fixture %s; run tests/golden/regenerate.py" % path
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    actual = golden.summarize(mode, golden.run_case(mode))
    # Compare field by field so a mismatch names what drifted instead of
    # dumping two full JSON blobs.
    for key in expected:
        assert actual.get(key) == expected[key], (
            "golden drift in mode=%s field=%r (intentional? regenerate the "
            "fixtures and commit them with the change)" % (mode, key)
        )
    assert set(actual) == set(expected)


def test_fixtures_cover_every_mode():
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert committed == set(golden.MODES)


def test_online_fixture_agrees_with_streaming_fixture():
    # The determinism contract in fixture form: without a refresh trigger
    # the online labels are bit-identical to the streaming labels.
    streaming = json.loads(
        golden.fixture_path("streaming").read_text(encoding="utf-8")
    )
    online = json.loads(golden.fixture_path("online").read_text(encoding="utf-8"))
    assert online["labels"] == streaming["labels"]


def test_serve_transcript_frames_are_canonical_wire_bytes():
    # The committed hex frames ARE the wire bytes: the codec is canonical
    # (sorted keys, no whitespace), so re-encoding each decoded payload
    # must reproduce the recorded frame byte for byte.
    from repro.serve import protocol

    payload = json.loads(golden.fixture_path("serve").read_text(encoding="utf-8"))
    transcript = payload["transcript"]
    assert len(transcript) == 10
    for entry in transcript:
        assert bytes.fromhex(entry["request_frame"]) == protocol.encode_frame(
            entry["request"]
        )
        assert bytes.fromhex(entry["response_frame"]) == protocol.encode_frame(
            entry["response"]
        )
    # The scripted error paths stay typed.
    kinds = [
        entry["response"]["error"]["kind"]
        for entry in transcript
        if not entry["response"]["ok"]
    ]
    assert kinds == ["ConfigurationError", "ProtocolError"]


def test_refresh_fixture_actually_refreshed():
    payload = json.loads(
        golden.fixture_path("online_refresh").read_text(encoding="utf-8")
    )
    assert payload["n_refreshes"] >= 1
