"""Tests for repro.baselines.kmodes and repro.baselines.squeezer."""

import numpy as np
import pytest

from repro.baselines.kmodes import KModes, matching_dissimilarity
from repro.baselines.squeezer import ClusterHistogram, Squeezer
from repro.errors import ConfigurationError, DataValidationError, NotFittedError
from repro.evaluation.metrics import clustering_error


class TestMatchingDissimilarity:
    def test_counts_mismatches(self):
        assert matching_dissimilarity(("a", "b", "c"), ("a", "x", "c")) == 1
        assert matching_dissimilarity(("a", "b"), ("a", "b")) == 0

    def test_missing_matches_only_missing(self):
        assert matching_dissimilarity((None, "a"), (None, "a")) == 0
        assert matching_dissimilarity((None, "a"), ("b", "a")) == 1

    def test_arity_mismatch_rejected(self):
        with pytest.raises(DataValidationError):
            matching_dissimilarity(("a",), ("a", "b"))


class TestKModes:
    def test_separates_obvious_groups(self):
        records = [("a", "x", "1")] * 5 + [("b", "y", "2")] * 5
        model = KModes(n_clusters=2).fit(records)
        assert sorted(np.bincount(model.labels_).tolist()) == [5, 5]
        assert model.cost_ == 0.0

    def test_modes_are_cluster_representatives(self):
        records = [("a", "x"), ("a", "x"), ("a", "y"), ("b", "z"), ("b", "z")]
        model = KModes(n_clusters=2).fit(records)
        assert ("a", "x") in model.modes_ or ("a", "y") in model.modes_

    def test_votes_like_quality(self, votes_small):
        model = KModes(n_clusters=2, rng=0).fit(votes_small)
        assert clustering_error(model.labels_, votes_small.labels) < 0.25

    def test_first_distinct_init_is_deterministic(self, votes_small):
        first = KModes(n_clusters=2).fit(votes_small).labels_
        second = KModes(n_clusters=2).fit(votes_small).labels_
        assert np.array_equal(first, second)

    def test_random_init_with_seed_is_reproducible(self, votes_small):
        first = KModes(n_clusters=2, init="random", rng=3).fit(votes_small).labels_
        second = KModes(n_clusters=2, init="random", rng=3).fit(votes_small).labels_
        assert np.array_equal(first, second)

    def test_clusters_property(self):
        records = [("a",)] * 3 + [("b",)] * 2
        model = KModes(n_clusters=2).fit(records)
        clusters = model.clusters_
        assert [len(c) for c in clusters] == [3, 2]

    def test_accepts_categorical_dataset(self, small_categorical_dataset):
        model = KModes(n_clusters=2).fit(small_categorical_dataset)
        assert len(model.labels_) == small_categorical_dataset.n_records

    def test_n_iterations_positive(self, votes_small):
        model = KModes(n_clusters=2).fit(votes_small)
        assert model.n_iterations_ >= 1

    def test_too_many_clusters_rejected(self):
        with pytest.raises(ConfigurationError):
            KModes(n_clusters=5).fit([("a",), ("b",)])

    def test_not_enough_distinct_records_rejected(self):
        with pytest.raises(DataValidationError):
            KModes(n_clusters=3).fit([("a",), ("a",), ("a",)])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            KModes(n_clusters=0)
        with pytest.raises(ConfigurationError):
            KModes(n_clusters=2, init="bogus")
        with pytest.raises(ConfigurationError):
            KModes(n_clusters=2, max_iterations=0)

    def test_not_fitted_errors(self):
        model = KModes(n_clusters=2)
        with pytest.raises(NotFittedError):
            model.labels_
        with pytest.raises(NotFittedError):
            model.modes_
        with pytest.raises(NotFittedError):
            model.cost_

    def test_empty_input_rejected(self):
        with pytest.raises(DataValidationError):
            KModes(n_clusters=1).fit([])


class TestClusterHistogram:
    def test_add_and_similarity(self):
        histogram = ClusterHistogram(2)
        histogram.add(("a", "x"))
        histogram.add(("a", "y"))
        assert histogram.size == 2
        assert histogram.similarity(("a", "x")) == pytest.approx(1.0 + 0.5)
        assert histogram.similarity(("b", "z")) == 0.0

    def test_missing_values_skipped(self):
        histogram = ClusterHistogram(2)
        histogram.add(("a", None))
        assert histogram.similarity((None, "x")) == 0.0
        assert histogram.n_entries() == 1

    def test_arity_mismatch_rejected(self):
        histogram = ClusterHistogram(2)
        with pytest.raises(DataValidationError):
            histogram.add(("a",))

    def test_empty_histogram_similarity_zero(self):
        assert ClusterHistogram(3).similarity(("a", "b", "c")) == 0.0


class TestSqueezer:
    def test_separates_obvious_groups(self):
        records = [("a", "x")] * 5 + [("b", "y")] * 5
        model = Squeezer(similarity_threshold=1.0).fit(records)
        assert model.n_clusters_ == 2
        assert clustering_error(model.labels_, [0] * 5 + [1] * 5) == 0.0

    def test_low_threshold_gives_one_cluster(self):
        records = [("a", "x"), ("b", "y"), ("c", "z")]
        model = Squeezer(similarity_threshold=0.0).fit(records)
        assert model.n_clusters_ == 1

    def test_high_threshold_gives_many_clusters(self):
        records = [("a", "x"), ("b", "y"), ("c", "z")]
        model = Squeezer(similarity_threshold=10.0).fit(records)
        assert model.n_clusters_ == 3

    def test_max_clusters_cap(self):
        records = [("a", "x"), ("b", "y"), ("c", "z"), ("d", "w")]
        model = Squeezer(similarity_threshold=10.0, max_clusters=2).fit(records)
        assert model.n_clusters_ == 2

    def test_clusters_property_and_total_entries(self):
        records = [("a", "x")] * 3 + [("b", "y")] * 2
        model = Squeezer(similarity_threshold=1.0).fit(records)
        assert [len(c) for c in model.clusters_] == [3, 2]
        assert model.total_entries() == 4

    def test_votes_like_quality(self, votes_small):
        model = Squeezer(similarity_threshold=9.0).fit(votes_small)
        assert clustering_error(model.labels_, votes_small.labels) < 0.35

    def test_accepts_categorical_dataset(self, small_categorical_dataset):
        model = Squeezer(similarity_threshold=1.5).fit(small_categorical_dataset)
        assert len(model.labels_) == small_categorical_dataset.n_records

    def test_order_dependence_is_single_pass(self):
        # The first record always founds cluster 0.
        records = [("b", "y"), ("a", "x"), ("b", "y")]
        model = Squeezer(similarity_threshold=1.0).fit(records)
        assert model.labels_[0] == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Squeezer(similarity_threshold=-1.0)
        with pytest.raises(ConfigurationError):
            Squeezer(similarity_threshold=1.0, max_clusters=0)

    def test_not_fitted_errors(self):
        model = Squeezer(similarity_threshold=1.0)
        with pytest.raises(NotFittedError):
            model.labels_
        with pytest.raises(NotFittedError):
            model.histograms_

    def test_empty_input_rejected(self):
        with pytest.raises(DataValidationError):
            Squeezer(similarity_threshold=1.0).fit([])
