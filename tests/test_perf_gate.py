"""Tests for repro.bench.perf_gate and the engine benchmark plumbing."""

import json


from repro.bench.engine_bench import run_engine_bench, time_engine_phases
from repro.bench.perf_gate import (
    DEFAULT_MAX_RATIO,
    check_agglomeration_regression,
    gate_against_baseline,
    load_bench,
)


def _payload(rows):
    return {"benchmark": "engine", "sizes": rows}


class TestRegressionCheck:
    def test_passes_when_equal(self):
        baseline = _payload([{"n": 500, "agglomerate_flat_s": 1.0}])
        assert check_agglomeration_regression(baseline, baseline) == []

    def test_passes_within_ratio(self):
        current = _payload([{"n": 500, "agglomerate_flat_s": 1.4}])
        baseline = _payload([{"n": 500, "agglomerate_flat_s": 1.0}])
        assert check_agglomeration_regression(current, baseline) == []

    def test_fails_beyond_ratio(self):
        current = _payload([{"n": 500, "agglomerate_flat_s": 2.0}])
        baseline = _payload([{"n": 500, "agglomerate_flat_s": 1.0}])
        violations = check_agglomeration_regression(current, baseline)
        assert len(violations) == 1
        assert "n=500" in violations[0]

    def test_slack_absorbs_tiny_times(self):
        # 3x regression on a 10 ms measurement stays within the absolute
        # slack, so scheduler noise cannot trip the gate.
        current = _payload([{"n": 500, "agglomerate_flat_s": 0.030}])
        baseline = _payload([{"n": 500, "agglomerate_flat_s": 0.010}])
        assert check_agglomeration_regression(current, baseline) == []

    def test_unmatched_sizes_ignored(self):
        current = _payload([{"n": 500, "agglomerate_flat_s": 9.0}])
        baseline = _payload([{"n": 1000, "agglomerate_flat_s": 1.0}])
        assert check_agglomeration_regression(current, baseline) == []

    def test_faster_run_passes(self):
        current = _payload([{"n": 500, "agglomerate_flat_s": 0.2}])
        baseline = _payload([{"n": 500, "agglomerate_flat_s": 1.0}])
        assert check_agglomeration_regression(current, baseline) == []

    def test_custom_ratio(self):
        current = _payload([{"n": 500, "agglomerate_flat_s": 1.2}])
        baseline = _payload([{"n": 500, "agglomerate_flat_s": 1.0}])
        assert check_agglomeration_regression(
            current, baseline, max_ratio=1.1, slack_seconds=0.0
        ) != []
        assert DEFAULT_MAX_RATIO == 1.5

    def test_missing_baseline_file(self, tmp_path):
        violations = gate_against_baseline(_payload([]), tmp_path / "nope.json")
        assert len(violations) == 1
        assert "does not exist" in violations[0]


class TestEngineBenchSmoke:
    def test_time_engine_phases_small(self):
        row = time_engine_phases(60, include_reference=True, repeats=1)
        assert row["n"] == 60
        assert row["agglomerate_flat_s"] > 0
        assert row["agglomerate_reference_s"] > 0
        assert row["n_merges"] > 0
        assert "agglomerate_speedup" in row

    def test_per_strategy_neighbor_timings_recorded(self):
        row = time_engine_phases(60, include_reference=False, repeats=1)
        assert row["neighbors_vectorized_s"] > 0
        assert row["neighbors_blocked_s"] > 0
        # The legacy key stays the labelling-ratio denominator.
        assert row["neighbors_s"] == row["neighbors_vectorized_s"]

    def test_neighbor_metrics_are_gated(self):
        from repro.bench.perf_gate import DEFAULT_PHASE_METRICS, DEFAULT_PHASE_SLACKS

        for metric in ("neighbors_vectorized_s", "neighbors_blocked_s"):
            assert metric in DEFAULT_PHASE_METRICS
            assert DEFAULT_PHASE_SLACKS[metric] <= 0.01

    def test_run_engine_bench_writes_json(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        payload = run_engine_bench([50], reference_max=50, repeats=1, path=path)
        assert path.exists()
        on_disk = load_bench(path)
        assert on_disk["sizes"][0]["n"] == payload["sizes"][0]["n"] == 50
        assert on_disk["workload"]["generator"] == "market-basket"

    def test_gate_against_fresh_baseline_passes(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        payload = run_engine_bench([50], reference_max=0, repeats=1, path=path)
        assert gate_against_baseline(payload, path) == []


class TestSpeedupRegressionCheck:
    def test_ratio_holds_passes(self):
        current = _payload([{"n": 500, "agglomerate_speedup": 4.5}])
        baseline = _payload([{"n": 500, "agglomerate_speedup": 4.5}])
        from repro.bench.perf_gate import check_speedup_regression

        assert check_speedup_regression(current, baseline) == []

    def test_ratio_drop_fails(self):
        from repro.bench.perf_gate import check_speedup_regression

        current = _payload([{"n": 500, "agglomerate_speedup": 2.0}])
        baseline = _payload([{"n": 500, "agglomerate_speedup": 4.5}])
        violations = check_speedup_regression(current, baseline)
        assert len(violations) == 1
        assert "agglomerate_speedup" in violations[0]

    def test_small_drop_within_ratio_passes(self):
        from repro.bench.perf_gate import check_speedup_regression

        current = _payload([{"n": 500, "agglomerate_speedup": 3.5}])
        baseline = _payload([{"n": 500, "agglomerate_speedup": 4.5}])
        assert check_speedup_regression(current, baseline) == []

    def test_missing_speedup_ignored(self):
        from repro.bench.perf_gate import check_speedup_regression

        current = _payload([{"n": 500, "agglomerate_flat_s": 0.1}])
        baseline = _payload([{"n": 500, "agglomerate_speedup": 4.5}])
        assert check_speedup_regression(current, baseline) == []


class TestPhaseRegressionChecks:
    def test_label_metric_gated(self):
        from repro.bench.perf_gate import check_phase_regressions

        current = _payload([
            {"n": 500, "agglomerate_flat_s": 1.0, "label_s": 2.0}
        ])
        baseline = _payload([
            {"n": 500, "agglomerate_flat_s": 1.0, "label_s": 1.0}
        ])
        violations = check_phase_regressions(current, baseline)
        assert len(violations) == 1
        assert "label_s" in violations[0]

    def test_both_phases_flagged(self):
        from repro.bench.perf_gate import check_phase_regressions

        current = _payload([
            {"n": 500, "agglomerate_flat_s": 3.0, "label_s": 3.0}
        ])
        baseline = _payload([
            {"n": 500, "agglomerate_flat_s": 1.0, "label_s": 1.0}
        ])
        assert len(check_phase_regressions(current, baseline)) == 2

    def test_old_baseline_without_label_metric_ignored(self):
        from repro.bench.perf_gate import check_phase_regressions

        current = _payload([
            {"n": 500, "agglomerate_flat_s": 1.0, "label_s": 9.0}
        ])
        baseline = _payload([{"n": 500, "agglomerate_flat_s": 1.0}])
        assert check_phase_regressions(current, baseline) == []

    def test_gate_against_baseline_covers_labeling(self, tmp_path):
        import json

        from repro.bench.perf_gate import gate_against_baseline

        baseline_path = tmp_path / "BENCH_engine.json"
        # Rows must account for the reference engine explicitly now
        # (reference_skipped), or the accounting check fires first.
        baseline_path.write_text(json.dumps(
            _payload([{
                "n": 500, "agglomerate_flat_s": 1.0, "label_s": 1.0,
                "reference_skipped": True,
            }])
        ))
        current = _payload([
            {
                "n": 500, "agglomerate_flat_s": 1.0, "label_s": 2.0,
                "reference_skipped": True,
            }
        ])
        violations = gate_against_baseline(current, baseline_path)
        assert len(violations) == 1
        assert "label_s" in violations[0]


class TestRatioRegressionCheck:
    def test_ratio_holds_passes(self):
        from repro.bench.perf_gate import check_ratio_regression

        current = _payload([{"n": 500, "label_s": 0.4, "neighbors_s": 0.2}])
        baseline = _payload([{"n": 500, "label_s": 0.2, "neighbors_s": 0.1}])
        assert check_ratio_regression(current, baseline) == []

    def test_ratio_blowup_fails(self):
        from repro.bench.perf_gate import check_ratio_regression

        current = _payload([{"n": 500, "label_s": 1.0, "neighbors_s": 0.1}])
        baseline = _payload([{"n": 500, "label_s": 0.2, "neighbors_s": 0.1}])
        violations = check_ratio_regression(current, baseline)
        assert len(violations) == 1
        assert "label_s/neighbors_s" in violations[0]

    def test_missing_metrics_ignored(self):
        from repro.bench.perf_gate import check_ratio_regression

        current = _payload([{"n": 500, "label_s": 9.0}])
        baseline = _payload([{"n": 500, "label_s": 0.1, "neighbors_s": 0.1}])
        assert check_ratio_regression(current, baseline) == []

    def test_zero_reference_ignored(self):
        from repro.bench.perf_gate import check_ratio_regression

        current = _payload([{"n": 500, "label_s": 9.0, "neighbors_s": 0.0}])
        baseline = _payload([{"n": 500, "label_s": 0.1, "neighbors_s": 0.1}])
        assert check_ratio_regression(current, baseline) == []


class TestLabelBatchedBenchField:
    def test_time_engine_phases_records_batched_labeling(self):
        row = time_engine_phases(60, include_reference=False, repeats=1)
        assert row["label_batched_s"] > 0
        assert row["label_batches"] >= 1


class TestBatchedLabelMetricGated:
    def test_label_batched_metric_gated(self):
        from repro.bench.perf_gate import check_phase_regressions

        current = _payload([
            {"n": 500, "agglomerate_flat_s": 1.0, "label_s": 1.0,
             "label_batched_s": 2.0}
        ])
        baseline = _payload([
            {"n": 500, "agglomerate_flat_s": 1.0, "label_s": 1.0,
             "label_batched_s": 1.0}
        ])
        violations = check_phase_regressions(current, baseline)
        assert len(violations) == 1
        assert "label_batched_s" in violations[0]

    def test_ratio_check_accepts_batched_metric(self):
        from repro.bench.perf_gate import check_ratio_regression

        current = _payload([
            {"n": 500, "label_batched_s": 1.0, "neighbors_s": 0.1}
        ])
        baseline = _payload([
            {"n": 500, "label_batched_s": 0.2, "neighbors_s": 0.1}
        ])
        violations = check_ratio_regression(
            current, baseline, metric="label_batched_s"
        )
        assert len(violations) == 1
        assert "label_batched_s/neighbors_s" in violations[0]


class TestPerMetricSlack:
    def test_label_metric_uses_tight_slack(self):
        # A 3x regression on a 10 ms labelling time must trip (tight 10 ms
        # slack) even though the same numbers pass for the agglomeration
        # metric under its 50 ms slack.
        from repro.bench.perf_gate import check_phase_regressions

        current = _payload([
            {"n": 500, "agglomerate_flat_s": 0.030, "label_s": 0.030}
        ])
        baseline = _payload([
            {"n": 500, "agglomerate_flat_s": 0.010, "label_s": 0.010}
        ])
        violations = check_phase_regressions(current, baseline)
        assert len(violations) == 1
        assert "label_s" in violations[0]

    def test_explicit_slack_overrides_per_metric_defaults(self):
        from repro.bench.perf_gate import check_phase_regressions

        current = _payload([{"n": 500, "label_s": 0.030}])
        baseline = _payload([{"n": 500, "label_s": 0.010}])
        assert check_phase_regressions(
            current, baseline, slack_seconds=0.05
        ) == []


class TestReferenceAccounting:
    """check_reference_accounting: reference metrics must never go missing
    silently — a row either records them or marks reference_skipped."""

    def _row(self, **extra):
        return {"n": 4000, "agglomerate_flat_s": 1.0, **extra}

    def test_metrics_present_passes(self):
        from repro.bench.perf_gate import check_reference_accounting

        payload = _payload([
            self._row(agglomerate_reference_s=5.0, agglomerate_speedup=5.0)
        ])
        assert check_reference_accounting(payload) == []

    def test_marker_without_metrics_passes(self):
        from repro.bench.perf_gate import check_reference_accounting

        payload = _payload([self._row(reference_skipped=True)])
        assert check_reference_accounting(payload) == []

    def test_silent_omission_flagged(self):
        from repro.bench.perf_gate import check_reference_accounting

        violations = check_reference_accounting(_payload([self._row()]))
        assert len(violations) == 1
        assert "n=4000" in violations[0]
        assert "reference_skipped" in violations[0]

    def test_partial_metrics_flagged(self):
        from repro.bench.perf_gate import check_reference_accounting

        violations = check_reference_accounting(
            _payload([self._row(agglomerate_reference_s=5.0)])
        )
        assert len(violations) == 1
        assert "agglomerate_speedup" in violations[0]

    def test_marker_metric_contradiction_flagged(self):
        from repro.bench.perf_gate import check_reference_accounting

        violations = check_reference_accounting(
            _payload([
                self._row(
                    reference_skipped=True,
                    agglomerate_reference_s=5.0,
                    agglomerate_speedup=5.0,
                )
            ])
        )
        assert len(violations) == 1
        assert "marks reference_skipped but records" in violations[0]

    def test_gate_against_baseline_runs_accounting(self, tmp_path):
        # A baseline whose large row silently lost its reference metrics is
        # rejected loudly instead of being half-gated.
        baseline_path = tmp_path / "BENCH_engine.json"
        baseline_path.write_text(
            json.dumps(_payload([self._row()])), encoding="utf-8"
        )
        current = _payload([
            self._row(agglomerate_reference_s=5.0, agglomerate_speedup=5.0)
        ])
        violations = gate_against_baseline(current, baseline_path)
        assert any("baseline" in v and "reference_skipped" in v for v in violations)

    def test_arena_metric_is_gated(self):
        from repro.bench.perf_gate import DEFAULT_PHASE_METRICS, DEFAULT_PHASE_SLACKS

        assert "agglomerate_arena_s" in DEFAULT_PHASE_METRICS
        assert "agglomerate_arena_s" in DEFAULT_PHASE_SLACKS

    def test_committed_baseline_accounts_for_every_row(self):
        from pathlib import Path

        from repro.bench.perf_gate import (
            BASELINE_FILENAME,
            check_reference_accounting,
        )

        path = Path(__file__).resolve().parents[1] / BASELINE_FILENAME
        assert check_reference_accounting(load_bench(path)) == []
