"""End-to-end integration tests across the public API."""

import numpy as np
import pytest

import repro
from repro import (
    CategoricalDataset,
    KModes,
    QRock,
    RockClustering,
    Squeezer,
    Stirr,
    TraditionalHierarchicalClustering,
    clustering_error,
    composition_table,
    purity,
    records_to_transactions,
    rock_cluster,
)
from repro.datasets.market_basket import generate_market_baskets
from repro.datasets.votes import generate_votes_like
from repro.evaluation.composition import pure_cluster_count


class TestPublicApi:
    def test_version_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestVotesEndToEnd:
    @pytest.fixture(scope="class")
    def votes(self):
        # Full-size synthetic twin of the 435-record Congressional Votes data,
        # so the paper's theta = 0.73 applies unchanged.
        return generate_votes_like(rng=0)

    def test_rock_pipeline_beats_traditional(self, votes):
        transactions = records_to_transactions(votes)
        rock_result = rock_cluster(transactions, n_clusters=2, theta=0.73, min_cluster_size=5)
        traditional = TraditionalHierarchicalClustering(n_clusters=2).fit(votes)
        rock_error = clustering_error(rock_result.labels, votes.labels)
        traditional_error = clustering_error(traditional.labels_, votes.labels)
        assert rock_error < 0.2
        assert rock_error <= traditional_error + 1e-9

    def test_rock_clusters_are_party_dominated(self, votes):
        transactions = records_to_transactions(votes)
        result = rock_cluster(transactions, n_clusters=2, theta=0.73, min_cluster_size=5)
        table = composition_table(result.labels, votes.labels, include_outliers=False)
        assert len(table) == 2
        assert all(row.dominant_share > 0.8 for row in table)
        dominant_classes = {row.dominant_class for row in table}
        assert dominant_classes == {"republican", "democrat"}

    def test_all_algorithms_run_on_votes(self, votes):
        n = votes.n_records
        assert len(KModes(n_clusters=2).fit(votes).labels_) == n
        assert len(Squeezer(similarity_threshold=9.0).fit(votes).labels_) == n
        assert len(Stirr(revised=True, rng=0).fit(votes).labels) == n
        assert len(TraditionalHierarchicalClustering(n_clusters=2).fit(votes).labels_) == n
        assert len(RockClustering(n_clusters=2, theta=0.73).fit(votes).labels_) == n


class TestMarketBasketEndToEnd:
    def test_rock_recovers_latent_clusters(self):
        baskets = generate_market_baskets(
            rng=0, n_transactions=300, n_clusters=3, cross_pool_rate=0.02, shared_rate=0.1
        )
        result = rock_cluster(baskets, n_clusters=3, theta=0.2, min_cluster_size=5)
        error = clustering_error(result.labels, baskets.labels)
        assert error < 0.15

    def test_qrock_and_rock_consistent_on_clean_data(self):
        baskets = generate_market_baskets(
            rng=1, n_transactions=150, n_clusters=2, cross_pool_rate=0.0, shared_rate=0.0
        )
        qrock = QRock(theta=0.1).fit(baskets)
        rock = RockClustering(n_clusters=2, theta=0.1).fit(baskets)
        assert purity(qrock.labels_, baskets.labels) > 0.95
        assert purity(rock.labels_, baskets.labels) > 0.95


class TestMushroomEndToEnd:
    def test_sampled_pipeline_produces_pure_clusters(self, mushroom_small):
        dataset, groups = mushroom_small
        transactions = records_to_transactions(dataset)
        result = rock_cluster(
            transactions,
            n_clusters=8,
            theta=0.8,
            sample_size=120,
            min_cluster_size=2,
            min_neighbors=1,
            rng=0,
        )
        table = composition_table(result.labels, dataset.labels, include_outliers=False)
        assert pure_cluster_count(table, threshold=0.95) >= len(table) - 1
        assert clustering_error(result.labels, dataset.labels) < 0.1

    def test_labels_and_clusters_consistent(self, mushroom_small):
        dataset, _ = mushroom_small
        transactions = records_to_transactions(dataset)
        result = rock_cluster(transactions, n_clusters=8, theta=0.8, rng=0)
        for label, members in enumerate(result.clusters):
            assert all(result.labels[i] == label for i in members)
        outliers = set(np.nonzero(result.labels == -1)[0].tolist())
        clustered = {i for members in result.clusters for i in members}
        assert outliers.isdisjoint(clustered)
        assert outliers | clustered == set(range(dataset.n_records))


class TestCategoricalDatasetDirectInput:
    def test_rock_accepts_dataset_without_manual_encoding(self):
        records = [("a", "x", "1")] * 6 + [("b", "y", "2")] * 6
        dataset = CategoricalDataset(records, labels=[0] * 6 + [1] * 6)
        model = RockClustering(n_clusters=2, theta=0.5).fit(dataset)
        assert clustering_error(model.labels_, dataset.labels) == 0.0
