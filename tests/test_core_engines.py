"""Tests for repro.core.engines (the agglomeration-engine registry) and
the arena engine's bit-identity contract.

``test_core_engine.py`` pins the flat engine against the reference spec;
this file pins the registry itself (names, normalisation, registration
errors, ``auto`` selection) and the arena engine against the flat spec —
exact :class:`~repro.types.MergeStep` histories including goodness floats
and tie-break order, surviving memberships, early-stop parity, and the
merge-loop counters surfaced through the model, the pipeline, the
incremental session and the serve ``status`` verb.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.core.engine import flat_agglomerate
from repro.core.engine_arena import ArenaAgglomerationEngine, arena_agglomerate
from repro.core.engines import (
    ARENA_ENGINE,
    AUTO_ENGINE,
    DEFAULT_ENGINE,
    FLAT_ENGINE,
    REFERENCE_ENGINE,
    available_engines,
    engine_choices,
    get_engine,
    normalize_engine_name,
    register_engine,
    resolve_engine_name,
    select_engine_name,
    validate_engine_name,
)
from repro.core.incremental import IncrementalRock
from repro.core.links import links_from_neighbors
from repro.core.neighbors import compute_neighbors
from repro.core.pipeline import RockPipeline
from repro.core.rock import RockClustering
from repro.datasets.market_basket import generate_market_baskets
from repro.errors import ConfigurationError


def _random_transactions(rng, n, universe):
    return [
        frozenset(
            rng.choice(universe, size=int(rng.integers(1, 7)), replace=False).tolist()
        )
        for _ in range(n)
    ]


def _links_for(transactions, theta):
    return links_from_neighbors(compute_neighbors(transactions, theta=theta))


def _random_links(seed: int, n: int, density: float, max_count: int):
    """A random symmetric int64 link matrix with deliberately tied counts."""
    rng = np.random.default_rng(seed)
    dense = rng.integers(0, max_count + 1, size=(n, n))
    dense *= rng.random((n, n)) < density
    dense = np.triu(dense, k=1)
    dense = dense + dense.T
    return sparse.csr_matrix(dense.astype(np.int64))


def assert_arena_matches_flat(links, n, n_clusters, theta, exponent_function=None):
    flat = flat_agglomerate(links, n, n_clusters, theta, exponent_function)
    arena = arena_agglomerate(links, n, n_clusters, theta, exponent_function)
    assert arena[0] == flat[0]  # MergeStep history, goodness floats included
    assert arena[1] == flat[1]  # surviving memberships
    assert arena[2] == flat[2]  # early-stop flag
    return arena


class _DummyEngine:
    def __init__(self, name):
        self.name = name

    def agglomerate(self, links, n_points, n_clusters, theta, exponent_function=None):
        raise NotImplementedError


class TestRegistry:
    def test_registration_order(self):
        assert available_engines() == [FLAT_ENGINE, REFERENCE_ENGINE, ARENA_ENGINE]

    def test_engine_choices_lead_with_auto(self):
        assert engine_choices() == [
            AUTO_ENGINE,
            FLAT_ENGINE,
            REFERENCE_ENGINE,
            ARENA_ENGINE,
        ]

    def test_default_engine_is_auto(self):
        assert DEFAULT_ENGINE == AUTO_ENGINE

    @pytest.mark.parametrize(
        ("raw", "expected"),
        [("  Arena ", "arena"), ("FLAT", "flat"), ("my_engine", "my-engine")],
    )
    def test_normalization(self, raw, expected):
        assert normalize_engine_name(raw) == expected

    def test_get_engine_normalizes(self):
        assert get_engine(" ARENA ").name == ARENA_ENGINE

    def test_registered_engines_report_their_names(self):
        for name in available_engines():
            assert get_engine(name).name == name

    def test_unknown_engine_message_lists_choices(self):
        with pytest.raises(ConfigurationError, match="auto, flat, reference, arena"):
            get_engine("warp")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            register_engine(_DummyEngine("  "))

    def test_auto_name_reserved(self):
        with pytest.raises(ConfigurationError, match="reserved"):
            register_engine(_DummyEngine("auto"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine(_DummyEngine("flat"))

    def test_auto_resolves_to_arena(self):
        assert select_engine_name() == ARENA_ENGINE
        assert resolve_engine_name(AUTO_ENGINE) == ARENA_ENGINE
        assert resolve_engine_name(" Auto ") == ARENA_ENGINE
        # Validation keeps auto symbolic: only resolution makes it concrete.
        assert validate_engine_name(AUTO_ENGINE) == AUTO_ENGINE

    def test_validate_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            validate_engine_name("warp")


class TestArenaBitIdentity:
    @pytest.mark.parametrize("theta", [0.0, 0.25, 0.5, 0.75])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_theta_grid_bit_identical(self, theta, seed):
        rng = np.random.default_rng(seed)
        transactions = _random_transactions(rng, n=70, universe=20)
        links = _links_for(transactions, theta)
        assert_arena_matches_flat(links, len(transactions), 4, theta)

    def test_theta_one_linkless_early_stop(self):
        # At theta = 1 distinct transactions have no neighbours: both
        # engines must stop before the first merge, identically.
        transactions = [frozenset({i, i + 1}) for i in range(10)]
        links = _links_for(transactions, 1.0)
        arena = assert_arena_matches_flat(links, len(transactions), 3, 1.0)
        assert arena[2] is True and not arena[0]

    def test_theta_one_with_links_raises_like_flat(self):
        # A nonzero link at theta = 1 hits the vanishing goodness
        # denominator; the arena engine must refuse with the flat engine's
        # exact message (it shares the seed's limitation on purpose).
        links = sparse.csr_matrix(np.array([[0, 2], [2, 0]], dtype=np.int64))
        with pytest.raises(ZeroDivisionError) as flat_err:
            flat_agglomerate(links, 2, 1, 1.0)
        with pytest.raises(ZeroDivisionError) as arena_err:
            arena_agglomerate(links, 2, 1, 1.0)
        assert str(arena_err.value) == str(flat_err.value)

    def test_custom_exponent_non_positive_goodness_stops_early_identically(self):
        # 1 + 2 f(theta) < 1 makes every denominator negative, so the best
        # goodness is never positive and both engines stop before the
        # first merge.
        rng = np.random.default_rng(11)
        transactions = _random_transactions(rng, n=30, universe=12)
        links = _links_for(transactions, 0.4)
        arena = assert_arena_matches_flat(
            links, len(transactions), 1, 0.4, exponent_function=lambda theta: -0.5
        )
        assert arena[2] is True and not arena[0]

    def test_custom_exponent_bit_identical(self):
        rng = np.random.default_rng(23)
        transactions = _random_transactions(rng, n=50, universe=15)
        links = _links_for(transactions, 0.5)
        assert_arena_matches_flat(
            links,
            len(transactions),
            3,
            0.5,
            exponent_function=lambda theta: 0.5 * (1.0 - theta),
        )

    def test_tie_break_order_bit_identical(self):
        # A chain whose links all carry the same count produces long runs
        # of exactly equal goodness; the winner must be the same
        # (goodness, cluster-id) order the flat heap yields.
        n = 12
        dense = np.zeros((n, n), dtype=np.int64)
        for i in range(n - 1):
            dense[i, i + 1] = dense[i + 1, i] = 1
        links = sparse.csr_matrix(dense)
        arena = assert_arena_matches_flat(links, n, 2, 0.5)
        assert len(arena[0]) > 0

    def test_all_duplicate_transactions_bit_identical(self):
        transactions = [frozenset({1, 2, 3})] * 8
        links = _links_for(transactions, 0.5)
        assert_arena_matches_flat(links, len(transactions), 1, 0.5)


class TestArenaDegenerates:
    def test_empty_links_stops_early(self):
        links = sparse.csr_matrix((4, 4), dtype=np.int64)
        history, members, stopped_early, counters = arena_agglomerate(
            links, 4, 1, 0.5
        )
        assert not history
        assert len(members) == 4
        assert stopped_early
        assert counters["merges"] == 0
        assert_arena_matches_flat(links, 4, 1, 0.5)

    def test_n_clusters_at_or_above_n_merges_nothing(self):
        rng = np.random.default_rng(3)
        transactions = _random_transactions(rng, n=6, universe=8)
        links = _links_for(transactions, 0.3)
        for n_clusters in (6, 9):
            arena = assert_arena_matches_flat(links, 6, n_clusters, 0.3)
            assert arena[0] == [] and arena[2] is False

    def test_single_point(self):
        links = sparse.csr_matrix((1, 1), dtype=np.int64)
        assert_arena_matches_flat(links, 1, 1, 0.5)

    def test_unsorted_unsymmetric_input_canonicalised(self):
        rng = np.random.default_rng(7)
        transactions = _random_transactions(rng, n=40, universe=12)
        links = _links_for(transactions, 0.4)
        upper = sparse.triu(links, k=1).tocoo()
        order = np.random.default_rng(0).permutation(upper.nnz)
        scrambled = sparse.coo_matrix(
            (upper.data[order], (upper.row[order], upper.col[order])),
            shape=upper.shape,
        ).tocsr()
        baseline = arena_agglomerate(links, 40, 3, 0.4)
        assert arena_agglomerate(scrambled, 40, 3, 0.4)[0] == baseline[0]

    def test_engine_class_runs_standalone(self):
        rng = np.random.default_rng(5)
        transactions = _random_transactions(rng, n=30, universe=10)
        links = _links_for(transactions, 0.4)
        engine = ArenaAgglomerationEngine(links, 30, 3, 0.4)
        history, members, stopped_early, counters = engine.run()
        flat = flat_agglomerate(links, 30, 3, 0.4)
        assert (history, members, stopped_early) == flat
        assert counters["merges"] == len(history)


class TestArenaFlatProperty:
    @settings(deadline=None, max_examples=80)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=2, max_value=28),
        density=st.floats(min_value=0.05, max_value=0.9),
        max_count=st.integers(min_value=1, max_value=4),
        theta=st.floats(min_value=0.05, max_value=0.95),
        k_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_arena_matches_flat_on_random_link_matrices(
        self, seed, n, density, max_count, theta, k_fraction
    ):
        links = _random_links(seed, n, density, max_count)
        n_clusters = max(1, int(round(k_fraction * n)))
        assert_arena_matches_flat(links, n, n_clusters, theta)


class TestFullModelParity:
    def test_all_registry_engines_identical_end_to_end(self):
        dataset = generate_market_baskets(n_transactions=150, rng=9)
        results = {}
        for engine in engine_choices():
            model = RockClustering(n_clusters=4, theta=0.5, engine=engine)
            results[engine] = model.fit(dataset.transactions).result_
        baseline = results[FLAT_ENGINE]
        for engine, result in results.items():
            assert result.merge_history == baseline.merge_history, engine
            assert np.array_equal(result.labels, baseline.labels), engine
            assert result.clusters == baseline.clusters, engine
            assert result.stopped_early == baseline.stopped_early, engine


class TestCountersExposure:
    def test_merge_counters_flow_through_model_pipeline_session_and_serve(
        self, tmp_path
    ):
        # One end-to-end assertion chain: the arena engine's merge-loop
        # counters must surface at every observability layer.
        dataset = generate_market_baskets(n_transactions=120, rng=4)
        transactions = dataset.transactions

        # Model level (auto resolves to arena, so counters are on).
        model = RockClustering(n_clusters=4, theta=0.5).fit(transactions)
        counters = model.result_.merge_counters
        assert counters["merges"] == len(model.result_.merge_history)
        assert counters["frontier_max"] >= 0

        # An uninstrumented engine reports no counters rather than fakes.
        flat_model = RockClustering(
            n_clusters=4, theta=0.5, engine=FLAT_ENGINE
        ).fit(transactions)
        assert flat_model.result_.merge_counters == {}

        # Pipeline level: the run parameters carry the same counters.
        result = RockPipeline(n_clusters=4, theta=0.5).run(transactions)
        assert result.parameters["merge_counters"]["merges"] >= 1

        # Session level: a forced refresh records its own loop counters.
        session = IncrementalRock(n_clusters=4, theta=0.5, rng=0)
        session.bootstrap(transactions, model.clusters_)
        assert session.last_refresh_counters == {}
        session.refresh()
        assert session.last_refresh_counters["merges"] >= 0
        assert set(session.last_refresh_counters) == set(counters)

        # Serve level: the status verb republishes the session's counters.
        from repro.serve.server import ReproServer

        server = ReproServer.create(session, tmp_path / "snap")
        status = server._handle_status()
        assert (
            status["refresh_merge_counters"] == session.last_refresh_counters
        )
