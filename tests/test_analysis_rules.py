"""Per-rule fixture tests for :mod:`repro.analysis`.

Each rule gets a minimal violating snippet and a clean twin, plus the
framework behaviours the self-hosting test relies on: inline suppressions
(explained, unexplained, standalone, unused), ``--select``/``--ignore``
code resolution, JSON output and the SPEC001 mutation guarantee.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    available_rules,
    get_rule,
    lint_source,
    module_name_for,
    register_rule,
    resolve_codes,
    run_paths,
)
from repro.analysis.base import parse_suppressions
from repro.analysis.rules.spec_freeze import (
    SPEC_TARGETS,
    SpecFreezeRule,
    compute_spec_hashes,
    load_pins,
)
from repro.errors import ConfigurationError

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"


def lint(source: str, module: str, codes: list[str] | None = None):
    """Lint a dedented snippet under an explicit module name."""
    return lint_source(textwrap.dedent(source), path="<fixture>", module=module, codes=codes)


def codes_of(report) -> list[str]:
    return [finding.code for finding in report.findings]


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_all_seven_rules_registered(self):
        expected = {"DET001", "DET002", "TIME001", "SPEC001", "IO001", "REG001", "ERR001"}
        assert expected <= set(available_rules())

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("det001").code == "DET001"

    def test_unknown_rule_raises(self):
        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            get_rule("NOPE999")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_rule(get_rule("DET001"))

    def test_every_rule_has_description(self):
        for code in available_rules():
            rule = get_rule(code)
            assert rule.name and rule.description


# --------------------------------------------------------------------- #
# DET001 — no global RNG
# --------------------------------------------------------------------- #
class TestDET001:
    def test_numpy_global_seed_flagged(self):
        report = lint(
            """
            import numpy as np
            np.random.seed(42)
            """,
            module="repro.core.fake",
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]

    def test_numpy_global_draw_flagged(self):
        report = lint(
            """
            import numpy
            x = numpy.random.shuffle(values)
            """,
            module="repro.extensions.fake",
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]

    def test_stdlib_random_import_flagged(self):
        report = lint("import random\n", module="repro.core.fake", codes=["DET001"])
        assert codes_of(report) == ["DET001"]

    def test_stdlib_from_import_flagged(self):
        report = lint(
            "from random import shuffle\n", module="repro.core.fake", codes=["DET001"]
        )
        assert codes_of(report) == ["DET001"]

    def test_default_rng_clean(self):
        report = lint(
            """
            import numpy as np
            generator = np.random.default_rng(0)
            values = generator.normal(size=3)
            state = np.random.Generator(np.random.PCG64(7))
            """,
            module="repro.core.fake",
            codes=["DET001"],
        )
        assert report.findings == []

    def test_renamed_numpy_import_still_seen(self):
        report = lint(
            """
            import numpy as nmp
            nmp.random.seed(1)
            """,
            module="repro.core.fake",
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]


# --------------------------------------------------------------------- #
# DET002 — no unsorted set iteration in core
# --------------------------------------------------------------------- #
class TestDET002:
    def test_for_loop_over_set_flagged(self):
        report = lint(
            """
            def f(xs):
                out = []
                pending = set(xs)
                for x in pending:
                    out.append(x)
                return out
            """,
            module="repro.core.fake",
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_list_of_set_flagged(self):
        report = lint(
            "def f(xs):\n    return list(set(xs))\n",
            module="repro.core.fake",
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_comprehension_over_set_literal_flagged(self):
        report = lint(
            "def f():\n    return [x + 1 for x in {3, 1, 2}]\n",
            module="repro.core.fake",
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_annotated_set_name_flagged(self):
        report = lint(
            """
            def f(items):
                seen: set[int] = set()
                for item in items:
                    seen.add(item)
                return tuple(seen)
            """,
            module="repro.core.fake",
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_sorted_wrapper_clean(self):
        report = lint(
            """
            def f(xs):
                pending = set(xs)
                out = []
                for x in sorted(pending):
                    out.append(x)
                return out, sorted(set(xs))
            """,
            module="repro.core.fake",
            codes=["DET002"],
        )
        assert report.findings == []

    def test_order_insensitive_uses_clean(self):
        report = lint(
            """
            def f(xs, y):
                seen = set(xs)
                return len(seen), (y in seen), max(seen), sum(seen)
            """,
            module="repro.core.fake",
            codes=["DET002"],
        )
        assert report.findings == []

    def test_out_of_scope_module_not_checked(self):
        report = lint(
            "def f(xs):\n    return list(set(xs))\n",
            module="repro.bench.fake",
            codes=["DET002"],
        )
        assert report.findings == []


# --------------------------------------------------------------------- #
# TIME001 — no wall clock in core
# --------------------------------------------------------------------- #
class TestTIME001:
    def test_time_time_flagged_in_core(self):
        report = lint(
            "import time\nstamp = time.time()\n",
            module="repro.core.fake",
            codes=["TIME001"],
        )
        assert codes_of(report) == ["TIME001"]

    def test_datetime_now_flagged(self):
        report = lint(
            """
            from datetime import datetime
            stamp = datetime.now()
            """,
            module="repro.data.fake",
            codes=["TIME001"],
        )
        assert codes_of(report) == ["TIME001"]

    def test_perf_counter_clean(self):
        report = lint(
            "import time\nstart = time.perf_counter()\n",
            module="repro.core.fake",
            codes=["TIME001"],
        )
        assert report.findings == []

    def test_interface_layer_out_of_scope(self):
        report = lint(
            "import time\nstamp = time.time()\n",
            module="repro.cli",
            codes=["TIME001"],
        )
        assert report.findings == []


# --------------------------------------------------------------------- #
# SPEC001 — frozen specs
# --------------------------------------------------------------------- #
class TestSPEC001:
    def test_pins_cover_every_target(self):
        pins = load_pins()
        for module, qualnames in SPEC_TARGETS.items():
            for qualname in qualnames:
                assert "%s::%s" % (module, qualname) in pins

    def test_current_sources_match_pins(self):
        sources = {
            "repro.core.rock": (SRC / "core" / "rock.py").read_text(encoding="utf-8"),
            "repro.core.neighbors.bruteforce": (
                SRC / "core" / "neighbors" / "bruteforce.py"
            ).read_text(encoding="utf-8"),
        }
        assert compute_spec_hashes(sources) == load_pins()

    def test_mutated_bruteforce_is_caught(self):
        source = (SRC / "core" / "neighbors" / "bruteforce.py").read_text(
            encoding="utf-8"
        )
        mutated = source.replace(">= theta", "> theta")
        assert mutated != source
        report = lint_source(
            mutated,
            path="<mutated>",
            module="repro.core.neighbors.bruteforce",
            codes=["SPEC001"],
        )
        assert codes_of(report) == ["SPEC001"]
        assert "structure of frozen spec" in report.findings[0].message

    def test_mutated_reference_engine_is_caught(self):
        source = (SRC / "core" / "rock.py").read_text(encoding="utf-8")
        mutated = source.replace(
            "best_goodness <= 0.0", "best_goodness < 0.0"
        )
        assert mutated != source
        report = lint_source(
            mutated, path="<mutated>", module="repro.core.rock", codes=["SPEC001"]
        )
        assert codes_of(report) == ["SPEC001"]

    def test_docstring_edits_do_not_trip_the_pin(self):
        source = (SRC / "core" / "neighbors" / "bruteforce.py").read_text(
            encoding="utf-8"
        )
        reworded = source.replace(
            "All-pairs measure evaluation; the reference implementation.",
            "All-pairs evaluation (reworded docstring).",
        )
        assert reworded != source
        report = lint_source(
            reworded,
            path="<reworded>",
            module="repro.core.neighbors.bruteforce",
            codes=["SPEC001"],
        )
        assert report.findings == []

    def test_removed_spec_is_reported(self):
        report = lint_source(
            "x = 1\n",
            path="<empty>",
            module="repro.core.neighbors.bruteforce",
            codes=["SPEC001"],
        )
        assert codes_of(report) == ["SPEC001"]
        assert "missing" in report.findings[0].message

    def test_missing_pin_is_reported(self):
        rule = SpecFreezeRule(
            targets={"repro.core.fake": ("thing",)}, pins={}
        )
        import ast

        from repro.analysis.base import RuleContext

        source = "def thing():\n    return 1\n"
        context = RuleContext(
            path="<fixture>",
            module="repro.core.fake",
            source=source,
            tree=ast.parse(source),
        )
        findings = rule.check(context)
        assert len(findings) == 1
        assert "no committed pin" in findings[0].message


# --------------------------------------------------------------------- #
# IO001 — atomic writes only
# --------------------------------------------------------------------- #
class TestIO001:
    def test_write_mode_open_flagged(self):
        report = lint(
            'def f(p):\n    with open(p, "w") as h:\n        h.write("x")\n',
            module="repro.evaluation.fake",
            codes=["IO001"],
        )
        assert codes_of(report) == ["IO001"]

    def test_binary_append_and_keyword_modes_flagged(self):
        report = lint(
            """
            def f(p):
                a = open(p, "wb")
                b = open(p, mode="a")
            """,
            module="repro.evaluation.fake",
            codes=["IO001"],
        )
        assert codes_of(report) == ["IO001", "IO001"]

    def test_path_write_text_flagged(self):
        report = lint(
            'def f(p):\n    p.write_text("data")\n',
            module="repro.bench.fake",
            codes=["IO001"],
        )
        assert codes_of(report) == ["IO001"]

    def test_path_open_write_flagged(self):
        report = lint(
            'def f(p):\n    with p.open("w") as h:\n        h.write("x")\n',
            module="repro.bench.fake",
            codes=["IO001"],
        )
        assert codes_of(report) == ["IO001"]

    def test_read_open_clean(self):
        report = lint(
            """
            def f(p):
                with open(p) as h:
                    return h.read()
            """,
            module="repro.evaluation.fake",
            codes=["IO001"],
        )
        assert report.findings == []

    def test_atomic_helper_module_exempt(self):
        report = lint(
            'def f(p):\n    with open(p, "w") as h:\n        h.write("x")\n',
            module="repro.data.io",
            codes=["IO001"],
        )
        assert report.findings == []

    def test_snapshot_tmp_dir_build_exempt(self):
        report = lint(
            'def f(p):\n    with p.open("wb") as h:\n        h.write(b"x")\n',
            module="repro.persistence.snapshot",
            codes=["IO001"],
        )
        assert report.findings == []


# --------------------------------------------------------------------- #
# REG001 — no drifting registry literals
# --------------------------------------------------------------------- #
class TestREG001:
    def test_comparison_outside_registry_flagged(self):
        report = lint(
            'def f(strategy):\n    return strategy == "blocked"\n',
            module="repro.cli",
            codes=["REG001"],
        )
        assert codes_of(report) == ["REG001"]

    def test_membership_tuple_flagged(self):
        report = lint(
            'def f(s):\n    return s in ("round-robin", "contiguous")\n',
            module="repro.core.pipeline",
            codes=["REG001"],
        )
        assert codes_of(report) == ["REG001", "REG001"]

    def test_choice_table_flagged(self):
        report = lint(
            'CHOICES = ["vectorized", "blocked"]\n',
            module="repro.bench.fake",
            codes=["REG001"],
        )
        assert codes_of(report) == ["REG001", "REG001"]

    def test_dict_dispatch_flagged(self):
        report = lint(
            'TABLE = {"flat": 1, "reference": 2}\n',
            module="repro.cli",
            codes=["REG001"],
        )
        assert codes_of(report) == ["REG001", "REG001"]

    def test_home_module_clean(self):
        report = lint(
            'def f(strategy):\n    return strategy == "blocked"\n',
            module="repro.core.neighbors.blocked",
            codes=["REG001"],
        )
        assert report.findings == []

    def test_shard_executor_literal_flagged_outside_registry(self):
        report = lint(
            'def f(executor):\n    return executor == "process"\n',
            module="repro.cli",
            codes=["REG001"],
        )
        assert codes_of(report) == ["REG001"]

    def test_shard_executor_names_allowed_in_sharding(self):
        report = lint(
            'def f(executor):\n    return executor in ("thread", "process")\n',
            module="repro.core.sharding",
            codes=["REG001"],
        )
        assert report.findings == []

    def test_auto_is_a_resolution_request_not_an_executor(self):
        # "auto" is deliberately unregistered: modules may compare against
        # it without importing anything from the sharding registry.
        report = lint(
            'def f(executor):\n    return executor == "auto"\n',
            module="repro.cli",
            codes=["REG001"],
        )
        assert report.findings == []

    def test_shared_name_allowed_in_either_home(self):
        # "bruteforce" is both a neighbour backend and a labelling strategy;
        # the labelling module may spell it.
        report = lint(
            'def f(s):\n    return s == "bruteforce"\n',
            module="repro.core.labeling",
            codes=["REG001"],
        )
        assert report.findings == []

    def test_unregistered_string_clean(self):
        report = lint(
            'def f(s):\n    return s == "totally-unrelated"\n',
            module="repro.cli",
            codes=["REG001"],
        )
        assert report.findings == []

    def test_single_name_in_plain_list_clean(self):
        # One name alone is not a choice table (e.g. an error-message part).
        report = lint(
            'PARTS = ["blocked"]\n',
            module="repro.cli",
            codes=["REG001"],
        )
        assert report.findings == []


# --------------------------------------------------------------------- #
# ERR001 — exception contract
# --------------------------------------------------------------------- #
class TestERR001:
    def test_silent_broad_catch_flagged(self):
        report = lint(
            """
            def f(x):
                try:
                    return x()
                except Exception:
                    return None
            """,
            module="repro.core.fake",
            codes=["ERR001"],
        )
        assert codes_of(report) == ["ERR001"]

    def test_bare_except_flagged(self):
        report = lint(
            """
            def f(x):
                try:
                    return x()
                except:
                    pass
            """,
            module="repro.core.fake",
            codes=["ERR001"],
        )
        assert codes_of(report) == ["ERR001"]

    def test_swallowing_injected_fault_directly_flagged(self):
        report = lint(
            """
            from repro.persistence.failpoints import InjectedFaultError

            def f(x):
                try:
                    return x()
                except InjectedFaultError:
                    return None
            """,
            module="repro.core.fake",
            codes=["ERR001"],
        )
        assert codes_of(report) == ["ERR001"]

    def test_broad_catch_that_reraises_clean(self):
        report = lint(
            """
            def f(x):
                try:
                    return x()
                except BaseException:
                    cleanup()
                    raise
            """,
            module="repro.core.fake",
            codes=["ERR001"],
        )
        assert report.findings == []

    def test_unchained_rewrap_flagged(self):
        report = lint(
            """
            def f(x):
                try:
                    return x()
                except ValueError:
                    raise RuntimeError("wrapped")
            """,
            module="repro.core.fake",
            codes=["ERR001"],
        )
        assert codes_of(report) == ["ERR001"]

    def test_chained_rewrap_clean(self):
        report = lint(
            """
            def f(x):
                try:
                    return x()
                except ValueError as error:
                    raise RuntimeError("wrapped") from error
            """,
            module="repro.core.fake",
            codes=["ERR001"],
        )
        assert report.findings == []

    def test_from_none_clean(self):
        report = lint(
            """
            def f(table, key):
                try:
                    return table[key]
                except KeyError:
                    raise LookupError("unknown %r" % key) from None
            """,
            module="repro.core.fake",
            codes=["ERR001"],
        )
        assert report.findings == []

    def test_narrow_catch_without_raise_clean(self):
        report = lint(
            """
            def f(x):
                try:
                    return x()
                except ValueError:
                    return None
            """,
            module="repro.core.fake",
            codes=["ERR001"],
        )
        assert report.findings == []


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #
class TestSuppressions:
    VIOLATION = 'def f(p):\n    p.write_text("x")  # repro-lint: disable=IO001 reason=demo fixture\n'

    def test_explained_suppression_silences_and_is_counted(self):
        report = lint(self.VIOLATION, module="repro.bench.fake", codes=["IO001"])
        assert report.findings == []
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppression_reason == "demo fixture"

    def test_unexplained_suppression_fails_the_run(self):
        source = 'def f(p):\n    p.write_text("x")  # repro-lint: disable=IO001\n'
        report = lint(source, module="repro.bench.fake", codes=["IO001"])
        assert report.findings == []
        assert len(report.unexplained_suppressions) == 1
        assert not report.ok
        assert report.exit_code() == 1

    def test_standalone_comment_applies_to_next_line(self):
        source = (
            "def f(p):\n"
            "    # repro-lint: disable=IO001 reason=covered by caller fsync\n"
            '    p.write_text("x")\n'
        )
        report = lint(source, module="repro.bench.fake", codes=["IO001"])
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_wrong_code_does_not_suppress(self):
        source = 'def f(p):\n    p.write_text("x")  # repro-lint: disable=DET001 reason=wrong code\n'
        report = lint(source, module="repro.bench.fake", codes=["IO001"])
        assert codes_of(report) == ["IO001"]
        assert len(report.unused_suppressions) == 1

    def test_multi_code_suppression(self):
        source = (
            "import time\n"
            "def f(p):\n"
            "    stamp = time.time()  # repro-lint: disable=TIME001,DET001 reason=fixture\n"
            "    return stamp\n"
        )
        report = lint(source, module="repro.core.fake", codes=["TIME001"])
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_parse_suppressions_shapes(self):
        lines = [
            "x = 1  # repro-lint: disable=AAA111 reason=why",
            "# repro-lint: disable=BBB222",
        ]
        suppressions = parse_suppressions("p.py", lines)
        assert suppressions[0].line == 1 and suppressions[0].explained
        assert suppressions[1].line == 3 and not suppressions[1].explained


# --------------------------------------------------------------------- #
# Select / ignore, runner and CLI
# --------------------------------------------------------------------- #
class TestRunnerAndCli:
    def test_resolve_codes_prefix_select(self):
        assert resolve_codes(["DET"], None) == ["DET001", "DET002"]

    def test_resolve_codes_ignore(self):
        codes = resolve_codes(None, ["SPEC001", "REG"])
        assert "SPEC001" not in codes and "REG001" not in codes
        assert "DET001" in codes

    def test_resolve_codes_unknown_select_raises(self):
        with pytest.raises(ConfigurationError, match="matches no registered rule"):
            resolve_codes(["ZZZ"], None)

    def test_module_name_for(self):
        assert (
            module_name_for(SRC / "core" / "engine.py") == "repro.core.engine"
        )
        assert (
            module_name_for(SRC / "core" / "neighbors" / "__init__.py")
            == "repro.core.neighbors"
        )

    def test_run_paths_on_tmp_tree(self, tmp_path):
        package = tmp_path / "repro" / "evaluation"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(
            'def f(p):\n    with open(p, "w") as h:\n        h.write("x")\n',
            encoding="utf-8",
        )
        (package / "good.py").write_text("VALUE = 1\n", encoding="utf-8")
        report = run_paths([tmp_path], select=["IO001"])
        assert report.files_checked == 2
        assert codes_of(report) == ["IO001"]
        ignored = run_paths([tmp_path], select=["IO001"], ignore=["IO001"])
        assert ignored.findings == []

    def test_run_paths_missing_path_raises(self):
        with pytest.raises(ConfigurationError, match="no such file"):
            run_paths(["definitely/not/here"])

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n", encoding="utf-8")
        report = run_paths([bad])
        assert codes_of(report) == ["SYNTAX"]
        assert not report.ok

    def test_json_report_round_trips(self):
        report = lint(
            'def f(p):\n    p.write_text("x")\n',
            module="repro.bench.fake",
            codes=["IO001"],
        )
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "IO001"
        assert payload["rules_run"] == ["IO001"]

    def test_cli_list_rules(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        )
        assert result.returncode == 0
        for code in ("DET001", "DET002", "SPEC001", "IO001", "REG001", "ERR001", "TIME001"):
            assert code in result.stdout

    def test_cli_finding_exit_code(self, tmp_path):
        bad = tmp_path / "repro_fixture.py"
        bad.write_text("import random\n", encoding="utf-8")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                str(bad),
                "--select",
                "DET001",
                "--format",
                "json",
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        )
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["findings"][0]["code"] == "DET001"
