"""Tests for repro.core.goodness."""

import numpy as np
import pytest

from repro.core.goodness import (
    criterion_function,
    default_expected_links_exponent,
    expected_pairwise_links,
    goodness,
    theta_power,
)
from repro.core.links import links_from_neighbors
from repro.core.neighbors import compute_neighbors
from repro.errors import ConfigurationError


class TestExponentFunction:
    def test_endpoints(self):
        assert default_expected_links_exponent(0.0) == 1.0
        assert default_expected_links_exponent(1.0) == 0.0

    def test_paper_value(self):
        assert default_expected_links_exponent(0.5) == pytest.approx(1 / 3)

    def test_monotonically_decreasing(self):
        thetas = np.linspace(0, 1, 11)
        values = [default_expected_links_exponent(t) for t in thetas]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            default_expected_links_exponent(1.2)


class TestThetaPower:
    def test_matches_formula(self):
        theta = 0.5
        exponent = 1 + 2 * default_expected_links_exponent(theta)
        assert theta_power(10, theta) == pytest.approx(10 ** exponent)

    def test_expected_pairwise_links_alias(self):
        assert expected_pairwise_links(7, 0.6) == theta_power(7, 0.6)

    def test_custom_exponent_function(self):
        assert theta_power(4, 0.9, f=lambda theta: 0.5) == pytest.approx(4 ** 2)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            theta_power(-1, 0.5)


class TestGoodness:
    def test_zero_links_zero_goodness(self):
        assert goodness(0, 5, 5, 0.5) == 0.0

    def test_positive_for_positive_links(self):
        assert goodness(10, 5, 5, 0.5) > 0

    def test_scales_linearly_in_links(self):
        assert goodness(20, 5, 5, 0.5) == pytest.approx(2 * goodness(10, 5, 5, 0.5))

    def test_prefers_small_clusters_for_equal_links(self):
        # The same number of cross links is stronger evidence for merging
        # small clusters than large ones.
        assert goodness(6, 3, 3, 0.5) > goodness(6, 30, 30, 0.5)

    def test_symmetric_in_cluster_sizes(self):
        assert goodness(5, 4, 9, 0.5) == pytest.approx(goodness(5, 9, 4, 0.5))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            goodness(1, 0, 5, 0.5)

    def test_negative_links_rejected(self):
        with pytest.raises(ConfigurationError):
            goodness(-1, 2, 2, 0.5)


class TestCriterionFunction:
    @pytest.fixture
    def links(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        return links_from_neighbors(graph)

    def test_correct_partition_beats_split_partition(self, links):
        theta = 0.4
        good = criterion_function(links, [[0, 1, 2], [3, 4, 5]], theta)
        split = criterion_function(links, [[0, 1], [2], [3, 4], [5]], theta)
        assert good > split

    def test_correct_partition_beats_mixed_partition(self, links):
        theta = 0.4
        good = criterion_function(links, [[0, 1, 2], [3, 4, 5]], theta)
        mixed = criterion_function(links, [[0, 1, 3], [2, 4, 5]], theta)
        assert good > mixed

    def test_empty_clusters_ignored(self, links):
        theta = 0.4
        with_empty = criterion_function(links, [[0, 1, 2], [], [3, 4, 5]], theta)
        without = criterion_function(links, [[0, 1, 2], [3, 4, 5]], theta)
        assert with_empty == pytest.approx(without)

    def test_singletons_contribute_zero(self, links):
        assert criterion_function(links, [[0], [1], [2], [3], [4], [5]], 0.4) == 0.0
