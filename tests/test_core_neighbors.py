"""Tests for repro.core.neighbors."""

import numpy as np
import pytest

from repro.core.neighbors import NEIGHBOR_STRATEGIES, available_backends, compute_neighbors
from repro.errors import ConfigurationError, DataValidationError
from repro.similarity.jaccard import DiceSimilarity
from repro.similarity.overlap import SimpleMatchingSimilarity


class TestComputeNeighbors:
    def test_two_group_structure(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        # Within each group every pair shares 2 of 4 items -> Jaccard 0.5.
        assert graph.adjacency[0, 1]
        assert graph.adjacency[1, 2]
        assert graph.adjacency[3, 4]
        # Across groups there are no shared items.
        assert not graph.adjacency[0, 3]
        assert graph.n_edges() == 6

    def test_theta_one_keeps_only_identical(self):
        graph = compute_neighbors([{1, 2}, {1, 2}, {1, 3}], theta=1.0)
        assert graph.adjacency[0, 1]
        assert not graph.adjacency[0, 2]

    def test_theta_zero_connects_everything(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.0)
        n = len(two_group_transactions)
        assert graph.n_edges() == n * (n - 1) // 2

    def test_diagonal_is_empty(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.2)
        assert graph.adjacency.diagonal().sum() == 0

    def test_bruteforce_and_vectorized_agree(self, two_group_transactions, rng):
        transactions = [
            frozenset(rng.choice(20, size=rng.integers(1, 8), replace=False).tolist())
            for _ in range(40)
        ]
        for theta in (0.1, 0.3, 0.5, 0.8):
            brute = compute_neighbors(transactions, theta, strategy="bruteforce")
            fast = compute_neighbors(transactions, theta, strategy="vectorized")
            assert (brute.adjacency != fast.adjacency).nnz == 0

    def test_empty_transactions_are_mutually_similar(self):
        graph = compute_neighbors([frozenset(), frozenset(), frozenset({1})], theta=0.9)
        assert graph.adjacency[0, 1]
        assert not graph.adjacency[0, 2]

    def test_neighbors_of_and_counts(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        assert graph.neighbors_of(0).tolist() == [1, 2]
        assert graph.neighbor_counts().tolist() == [2, 2, 2, 2, 2, 2]

    def test_degree_histogram(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        assert graph.degree_histogram() == {2: 6}

    def test_subgraph(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        sub = graph.subgraph([0, 1, 3])
        assert sub.n_points == 3
        assert sub.adjacency[0, 1]
        assert not sub.adjacency[0, 2]

    def test_non_jaccard_vectorizable_measure_works(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4, measure=DiceSimilarity())
        assert graph.measure_name == "dice"
        assert graph.n_edges() > 0

    def test_vectorized_accepts_dice(self, two_group_transactions):
        # The historical Jaccard-only restriction is gone: any measure with
        # the vectorized-counts capability runs through the fast backends.
        fast = compute_neighbors(
            two_group_transactions, 0.4, measure=DiceSimilarity(), strategy="vectorized"
        )
        brute = compute_neighbors(
            two_group_transactions, 0.4, measure=DiceSimilarity(), strategy="bruteforce"
        )
        assert (fast.adjacency != brute.adjacency).nnz == 0

    def test_vectorized_with_non_vectorizable_measure_rejected(self, two_group_transactions):
        measure = SimpleMatchingSimilarity(n_attributes=8)
        for strategy in ("vectorized", "blocked", "inverted-index"):
            with pytest.raises(ConfigurationError):
                compute_neighbors(
                    two_group_transactions, 0.4, measure=measure, strategy=strategy
                )

    def test_auto_falls_back_to_bruteforce_for_non_vectorizable(self, two_group_transactions):
        measure = SimpleMatchingSimilarity(n_attributes=8)
        graph = compute_neighbors(two_group_transactions, 0.1, measure=measure)
        assert graph.measure_name == "simple-matching"
        assert graph.n_edges() > 0

    def test_invalid_theta_rejected(self, two_group_transactions):
        with pytest.raises(ConfigurationError):
            compute_neighbors(two_group_transactions, theta=1.5)
        with pytest.raises(ConfigurationError):
            compute_neighbors(two_group_transactions, theta=-0.1)

    def test_unknown_strategy_rejected(self, two_group_transactions):
        with pytest.raises(ConfigurationError):
            compute_neighbors(two_group_transactions, 0.5, strategy="bogus")

    def test_empty_input_rejected(self):
        with pytest.raises(DataValidationError):
            compute_neighbors([], theta=0.5)

    def test_single_point(self):
        graph = compute_neighbors([{1, 2}], theta=0.5)
        assert graph.n_points == 1
        assert graph.n_edges() == 0

    def test_strategies_constant_is_consistent(self):
        assert set(NEIGHBOR_STRATEGIES) == {
            "auto", "bruteforce", "vectorized", "blocked", "inverted-index"
        }
        # The constant is derived from the registry, not a parallel list.
        assert NEIGHBOR_STRATEGIES == ("auto", *available_backends())

    def test_jaccard_threshold_boundary_included(self):
        # Jaccard({1,2,3},{2,3,4}) == 0.5 exactly; theta=0.5 must include it.
        graph = compute_neighbors([{1, 2, 3}, {2, 3, 4}], theta=0.5)
        assert graph.adjacency[0, 1]


class TestCompleteAdjacency:
    """The theta == 0 all-pairs graph is built directly in CSR form."""

    @pytest.mark.parametrize("n", [1, 2, 3, 7])
    def test_matches_bruteforce(self, n, rng):
        transactions = [
            frozenset(rng.choice(12, size=int(rng.integers(1, 5)), replace=False).tolist())
            for _ in range(n)
        ]
        vectorized = compute_neighbors(transactions, theta=0.0, strategy="vectorized")
        bruteforce = compute_neighbors(transactions, theta=0.0, strategy="bruteforce")
        assert (vectorized.adjacency != bruteforce.adjacency).nnz == 0

    def test_complete_graph_shape(self):
        graph = compute_neighbors([{1}, {2}, {3}, {4}], theta=0.0)
        assert graph.n_edges() == 6
        assert np.all(graph.neighbor_counts() == 3)
        assert np.all(graph.adjacency.diagonal() == 0)

    def test_includes_empty_transactions(self):
        graph = compute_neighbors([frozenset(), {1}, frozenset()], theta=0.0)
        assert graph.n_edges() == 3


class TestVectorizedEmptyPairs:
    def test_many_empty_transactions(self):
        transactions = [frozenset()] * 4 + [frozenset({1, 2})]
        graph = compute_neighbors(transactions, theta=0.5)
        # The four empty sets are pairwise identical (Jaccard 1).
        assert graph.n_edges() == 6
        assert graph.neighbor_counts().tolist() == [3, 3, 3, 3, 0]

    def test_matches_bruteforce_with_empties(self, rng):
        transactions = [
            frozenset(rng.choice(8, size=int(rng.integers(1, 4)), replace=False).tolist())
            for _ in range(20)
        ] + [frozenset(), frozenset(), frozenset()]
        for theta in (0.2, 0.6, 1.0):
            vectorized = compute_neighbors(transactions, theta=theta, strategy="vectorized")
            bruteforce = compute_neighbors(transactions, theta=theta, strategy="bruteforce")
            assert (vectorized.adjacency != bruteforce.adjacency).nnz == 0


class TestDegreeHistogram:
    def test_matches_manual_count(self, rng):
        transactions = [
            frozenset(rng.choice(10, size=int(rng.integers(1, 5)), replace=False).tolist())
            for _ in range(30)
        ]
        graph = compute_neighbors(transactions, theta=0.4)
        histogram = graph.degree_histogram()
        counts = graph.neighbor_counts().tolist()
        expected = {}
        for degree in counts:
            expected[degree] = expected.get(degree, 0) + 1
        assert histogram == expected
        assert sum(histogram.values()) == graph.n_points

    def test_shared_item_index_accepted(self, two_group_transactions):
        from repro.data.encoding import build_item_index

        index = build_item_index(two_group_transactions)
        with_index = compute_neighbors(two_group_transactions, theta=0.4, item_index=index)
        without_index = compute_neighbors(two_group_transactions, theta=0.4)
        assert (with_index.adjacency != without_index.adjacency).nnz == 0
