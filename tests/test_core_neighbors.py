"""Tests for repro.core.neighbors."""

import numpy as np
import pytest

from repro.core.neighbors import NEIGHBOR_STRATEGIES, compute_neighbors
from repro.errors import ConfigurationError, DataValidationError
from repro.similarity.jaccard import DiceSimilarity, JaccardSimilarity


class TestComputeNeighbors:
    def test_two_group_structure(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        # Within each group every pair shares 2 of 4 items -> Jaccard 0.5.
        assert graph.adjacency[0, 1]
        assert graph.adjacency[1, 2]
        assert graph.adjacency[3, 4]
        # Across groups there are no shared items.
        assert not graph.adjacency[0, 3]
        assert graph.n_edges() == 6

    def test_theta_one_keeps_only_identical(self):
        graph = compute_neighbors([{1, 2}, {1, 2}, {1, 3}], theta=1.0)
        assert graph.adjacency[0, 1]
        assert not graph.adjacency[0, 2]

    def test_theta_zero_connects_everything(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.0)
        n = len(two_group_transactions)
        assert graph.n_edges() == n * (n - 1) // 2

    def test_diagonal_is_empty(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.2)
        assert graph.adjacency.diagonal().sum() == 0

    def test_bruteforce_and_vectorized_agree(self, two_group_transactions, rng):
        transactions = [
            frozenset(rng.choice(20, size=rng.integers(1, 8), replace=False).tolist())
            for _ in range(40)
        ]
        for theta in (0.1, 0.3, 0.5, 0.8):
            brute = compute_neighbors(transactions, theta, strategy="bruteforce")
            fast = compute_neighbors(transactions, theta, strategy="vectorized")
            assert (brute.adjacency != fast.adjacency).nnz == 0

    def test_empty_transactions_are_mutually_similar(self):
        graph = compute_neighbors([frozenset(), frozenset(), frozenset({1})], theta=0.9)
        assert graph.adjacency[0, 1]
        assert not graph.adjacency[0, 2]

    def test_neighbors_of_and_counts(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        assert graph.neighbors_of(0).tolist() == [1, 2]
        assert graph.neighbor_counts().tolist() == [2, 2, 2, 2, 2, 2]

    def test_degree_histogram(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        assert graph.degree_histogram() == {2: 6}

    def test_subgraph(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        sub = graph.subgraph([0, 1, 3])
        assert sub.n_points == 3
        assert sub.adjacency[0, 1]
        assert not sub.adjacency[0, 2]

    def test_non_jaccard_measure_uses_bruteforce(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4, measure=DiceSimilarity())
        assert graph.measure_name == "dice"
        assert graph.n_edges() > 0

    def test_vectorized_with_non_jaccard_rejected(self, two_group_transactions):
        with pytest.raises(ConfigurationError):
            compute_neighbors(
                two_group_transactions, 0.4, measure=DiceSimilarity(), strategy="vectorized"
            )

    def test_invalid_theta_rejected(self, two_group_transactions):
        with pytest.raises(ConfigurationError):
            compute_neighbors(two_group_transactions, theta=1.5)
        with pytest.raises(ConfigurationError):
            compute_neighbors(two_group_transactions, theta=-0.1)

    def test_unknown_strategy_rejected(self, two_group_transactions):
        with pytest.raises(ConfigurationError):
            compute_neighbors(two_group_transactions, 0.5, strategy="bogus")

    def test_empty_input_rejected(self):
        with pytest.raises(DataValidationError):
            compute_neighbors([], theta=0.5)

    def test_single_point(self):
        graph = compute_neighbors([{1, 2}], theta=0.5)
        assert graph.n_points == 1
        assert graph.n_edges() == 0

    def test_strategies_constant_is_consistent(self):
        assert set(NEIGHBOR_STRATEGIES) == {"auto", "bruteforce", "vectorized"}

    def test_jaccard_threshold_boundary_included(self):
        # Jaccard({1,2,3},{2,3,4}) == 0.5 exactly; theta=0.5 must include it.
        graph = compute_neighbors([{1, 2, 3}, {2, 3, 4}], theta=0.5)
        assert graph.adjacency[0, 1]
