"""Tests for the repro.datasets subpackage (generators, loaders, registry)."""


import numpy as np
import pytest

from repro.data.dataset import CategoricalDataset, TransactionDataset
from repro.datasets.market_basket import (
    InstacartBasketConfig,
    MarketBasketConfig,
    example_transactions,
    generate_instacart_baskets,
    generate_market_baskets,
)
from repro.datasets.mushroom import (
    MUSHROOM_ATTRIBUTES,
    fetch_mushroom,
    generate_mushroom_like,
    load_mushroom,
)
from repro.datasets.mutual_funds import FundFamily, generate_mutual_funds
from repro.datasets.registry import available_datasets, fetch_dataset
from repro.datasets.votes import (
    VOTE_ATTRIBUTES,
    fetch_votes,
    generate_votes_like,
    load_votes,
)
from repro.errors import ConfigurationError, DatasetUnavailableError


class TestVotes:
    def test_default_shape_matches_real_data(self):
        ds = generate_votes_like(rng=0)
        assert ds.n_records == 435
        assert ds.n_attributes == 16
        assert ds.class_distribution() == {"republican": 168, "democrat": 267}
        assert ds.attribute_names == VOTE_ATTRIBUTES

    def test_values_are_yes_no_or_missing(self):
        ds = generate_votes_like(n_republicans=20, n_democrats=20, rng=0)
        values = {value for record in ds for value in record}
        assert values <= {"y", "n", None}

    def test_missing_rate_roughly_respected(self):
        ds = generate_votes_like(rng=0, missing_rate=0.1)
        rate = ds.missing_mask().mean()
        assert 0.05 < rate < 0.15

    def test_missing_rate_zero(self):
        ds = generate_votes_like(n_republicans=10, n_democrats=10, missing_rate=0.0, rng=0)
        assert ds.missing_mask().sum() == 0

    def test_parties_are_separable(self):
        ds = generate_votes_like(rng=0)
        # Republicans should say "y" to physician-fee-freeze far more often.
        column = ds.column("physician-fee-freeze")
        labels = ds.labels
        rep_yes = sum(1 for v, l in zip(column, labels) if l == "republican" and v == "y")
        dem_yes = sum(1 for v, l in zip(column, labels) if l == "democrat" and v == "y")
        assert rep_yes > dem_yes

    def test_reproducible_with_seed(self):
        assert generate_votes_like(rng=4).records == generate_votes_like(rng=4).records

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            generate_votes_like(n_republicans=0)
        with pytest.raises(ConfigurationError):
            generate_votes_like(missing_rate=1.5)

    def test_load_votes_real_format(self, tmp_path):
        path = tmp_path / "house-votes-84.data"
        path.write_text(
            "republican," + ",".join(["y"] * 16) + "\n"
            "democrat," + ",".join(["n"] * 15 + ["?"]) + "\n"
        )
        ds = load_votes(path)
        assert ds.n_records == 2
        assert ds.labels == ["republican", "democrat"]
        assert ds.record(1)[-1] is None

    def test_fetch_votes_missing_explicit_path_raises(self, tmp_path):
        with pytest.raises(DatasetUnavailableError):
            fetch_votes(path=tmp_path / "nope.data")

    def test_fetch_votes_falls_back_to_generator(self):
        ds = fetch_votes(rng=0)
        assert isinstance(ds, CategoricalDataset)
        assert ds.n_records == 435


class TestMushroom:
    def test_small_generator_shape(self, mushroom_small):
        dataset, groups = mushroom_small
        assert dataset.n_attributes == 22
        assert dataset.attribute_names == MUSHROOM_ATTRIBUTES
        assert dataset.n_records == len(groups)
        assert set(dataset.labels) == {"edible", "poisonous"}

    def test_default_shape_matches_real_data(self):
        ds = generate_mushroom_like(rng=0)
        assert ds.n_records == 8124
        assert ds.class_distribution() == {"edible": 4208, "poisonous": 3916}

    def test_groups_are_class_consistent(self, mushroom_small):
        dataset, groups = mushroom_small
        for group in np.unique(groups):
            labels_in_group = {dataset.label(i) for i in np.nonzero(groups == group)[0]}
            assert len(labels_in_group) == 1

    def test_groups_are_internally_similar(self, mushroom_small):
        dataset, groups = mushroom_small
        group = np.nonzero(groups == groups[0])[0][:5]
        records = [dataset.record(i) for i in group]
        agreements = [
            sum(1 for a, b in zip(records[0], r) if a == b) for r in records[1:]
        ]
        assert all(a >= 17 for a in agreements)

    def test_sibling_groups_share_most_attributes(self):
        ds, groups = generate_mushroom_like(
            group_sizes_edible=(10,),
            group_sizes_poisonous=(10,),
            noise=0.0,
            sibling_overlap=5,
            rng=0,
            return_groups=True,
        )
        edible_record = ds.record(int(np.nonzero(groups == 0)[0][0]))
        poisonous_record = ds.record(int(np.nonzero(groups == 1)[0][0]))
        shared = sum(1 for a, b in zip(edible_record, poisonous_record) if a == b)
        assert shared == 22 - 5

    def test_sibling_overlap_zero_gives_independent_templates(self):
        ds, groups = generate_mushroom_like(
            group_sizes_edible=(10,),
            group_sizes_poisonous=(10,),
            noise=0.0,
            sibling_overlap=0,
            rng=0,
            return_groups=True,
        )
        edible_record = ds.record(int(np.nonzero(groups == 0)[0][0]))
        poisonous_record = ds.record(int(np.nonzero(groups == 1)[0][0]))
        shared = sum(1 for a, b in zip(edible_record, poisonous_record) if a == b)
        assert shared < 15

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            generate_mushroom_like(noise=1.0)
        with pytest.raises(ConfigurationError):
            generate_mushroom_like(group_sizes_edible=())
        with pytest.raises(ConfigurationError):
            generate_mushroom_like(sibling_overlap=-1)

    def test_load_mushroom_real_format(self, tmp_path):
        path = tmp_path / "agaricus-lepiota.data"
        row = ",".join(["x"] * 22)
        path.write_text("e,%s\np,%s\n" % (row, row))
        ds = load_mushroom(path)
        assert ds.labels == ["edible", "poisonous"]
        assert ds.n_attributes == 22

    def test_fetch_mushroom_generator_fallback(self):
        ds = fetch_mushroom(rng=0, group_sizes_edible=(5,), group_sizes_poisonous=(5,))
        assert ds.n_records == 10


class TestMarketBasket:
    def test_example_transactions_structure(self):
        baskets = example_transactions()
        assert isinstance(baskets, TransactionDataset)
        assert baskets.has_labels
        assert set(baskets.labels) == {"A", "B"}
        assert baskets.n_transactions == 40

    def test_generator_shape_and_labels(self):
        baskets = generate_market_baskets(rng=0, n_transactions=200, n_clusters=3)
        assert baskets.n_transactions == 200
        assert set(baskets.labels) <= {0, 1, 2}

    def test_generator_baskets_have_minimum_size(self):
        baskets = generate_market_baskets(rng=0, n_transactions=100)
        assert min(len(t) for t in baskets) >= 2

    def test_config_override_merge(self):
        baskets = generate_market_baskets(
            MarketBasketConfig(n_transactions=50), rng=0, n_clusters=2
        )
        assert baskets.n_transactions == 50

    def test_cluster_pools_mostly_disjoint(self):
        baskets = generate_market_baskets(
            rng=0, n_transactions=300, n_clusters=2, cross_pool_rate=0.0, shared_rate=0.0
        )
        items_by_label: dict = {0: set(), 1: set()}
        for transaction, label in zip(baskets.transactions, baskets.labels):
            items_by_label[label] |= transaction
        assert not (items_by_label[0] & items_by_label[1])

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_market_baskets(rng=0, n_transactions=0)
        with pytest.raises(ConfigurationError):
            MarketBasketConfig(basket_size_mean=1.0).validate()


class TestInstacartBaskets:
    def test_shape_labels_and_minimum_size(self):
        baskets = generate_instacart_baskets(rng=0, n_transactions=500, n_clusters=3)
        assert baskets.n_transactions == 500
        assert set(baskets.labels) <= {0, 1, 2}
        assert min(len(t) for t in baskets) >= 2

    def test_deterministic_for_a_seed(self):
        first = generate_instacart_baskets(rng=11, n_transactions=400)
        second = generate_instacart_baskets(rng=11, n_transactions=400)
        assert first.transactions == second.transactions
        assert list(first.labels) == list(second.labels)
        third = generate_instacart_baskets(rng=12, n_transactions=400)
        assert first.transactions != third.transactions

    def test_item_popularity_is_zipfian(self):
        # Rank-0 products must dominate their pools: the most popular item
        # should appear far more often than the median item.
        from collections import Counter

        baskets = generate_instacart_baskets(rng=0, n_transactions=2000)
        counts = sorted(
            Counter(i for t in baskets.transactions for i in t).values(),
            reverse=True,
        )
        assert counts[0] >= 4 * counts[len(counts) // 2]

    def test_segment_pools_disjoint_without_noise(self):
        baskets = generate_instacart_baskets(
            rng=0, n_transactions=400, n_clusters=2,
            cross_pool_rate=0.0, shared_rate=0.0, shared_items=0,
        )
        items_by_label: dict = {0: set(), 1: set()}
        for transaction, label in zip(baskets.transactions, baskets.labels):
            items_by_label[label] |= transaction
        assert not (items_by_label[0] & items_by_label[1])

    def test_staples_cross_segments(self):
        config = InstacartBasketConfig(n_transactions=2000)
        baskets = generate_instacart_baskets(config, rng=0)
        shared_base = config.n_clusters * config.items_per_cluster
        segments_with_staples = {
            label
            for transaction, label in zip(baskets.transactions, baskets.labels)
            if any(item >= shared_base for item in transaction)
        }
        assert segments_with_staples == set(range(config.n_clusters))

    def test_config_override_merge(self):
        baskets = generate_instacart_baskets(
            InstacartBasketConfig(n_transactions=60), rng=0, n_clusters=2
        )
        assert baskets.n_transactions == 60
        assert set(baskets.labels) <= {0, 1}

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_instacart_baskets(rng=0, n_transactions=0)
        with pytest.raises(ConfigurationError):
            InstacartBasketConfig(zipf_exponent=-0.5).validate()
        with pytest.raises(ConfigurationError):
            InstacartBasketConfig(basket_size_sigma=0.0).validate()
        with pytest.raises(ConfigurationError):
            InstacartBasketConfig(shared_rate=0.6, cross_pool_rate=0.5).validate()


class TestMutualFunds:
    def test_shape_and_labels(self):
        names, prices, families = generate_mutual_funds(n_days=100, rng=0)
        assert prices.shape == (len(names), 100)
        assert len(families) == len(names)
        assert len(set(families)) == 6

    def test_prices_positive(self):
        _, prices, _ = generate_mutual_funds(n_days=50, rng=0)
        assert np.all(prices > 0)

    def test_same_family_funds_correlate(self):
        _, prices, families = generate_mutual_funds(n_days=300, rng=0)
        returns = np.diff(np.log(prices), axis=1)
        families = np.array(families)
        bond = returns[families == "bond"]
        metals = returns[families == "precious-metals"]
        within = np.corrcoef(bond[0], bond[1])[0, 1]
        across = np.corrcoef(bond[0], metals[0])[0, 1]
        assert within > 0.5
        assert within > across

    def test_custom_families(self):
        families = (FundFamily("test", n_funds=3),)
        names, prices, labels = generate_mutual_funds(families=families, n_days=10, rng=0)
        assert len(names) == 3
        assert set(labels) == {"test"}

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            generate_mutual_funds(n_days=1)
        with pytest.raises(ConfigurationError):
            generate_mutual_funds(initial_price=0.0)
        with pytest.raises(ConfigurationError):
            generate_mutual_funds(families=())


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        for expected in ("votes", "mushroom", "basket-example", "market-basket", "mutual-funds"):
            assert expected in names

    def test_fetch_by_name(self):
        baskets = fetch_dataset("basket-example")
        assert baskets.n_transactions == 40

    def test_fetch_with_kwargs(self):
        ds = fetch_dataset("votes", rng=0)
        assert ds.n_records == 435

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            fetch_dataset("iris")
