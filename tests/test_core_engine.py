"""Tests for repro.core.engine (the flat agglomeration engine).

The contract of ``engine="flat"`` is *bit-identical* behaviour to
``engine="reference"``: the same merge history (including goodness values),
the same labels, the same criterion and the same early-stop flag.  The
tests below enforce that on randomized transaction sets across the theta
range and on synthetic versions of all four seed data sets (votes,
mushroom, mutual funds, market baskets).
"""

import numpy as np
import pytest
from scipy import sparse

from repro.core.engine import FlatAgglomerationEngine, flat_agglomerate
from repro.core.links import links_from_neighbors
from repro.core.neighbors import compute_neighbors
from repro.core.rock import ENGINES, RockClustering
from repro.datasets.market_basket import example_transactions, generate_market_baskets
from repro.datasets.mushroom import generate_mushroom_like
from repro.datasets.mutual_funds import generate_mutual_funds
from repro.errors import ConfigurationError, InsufficientLinksError
from repro.timeseries.categorize import to_updown_transactions


def _random_transactions(rng: np.random.Generator, n: int, universe: int) -> list[frozenset]:
    return [
        frozenset(
            rng.choice(universe, size=int(rng.integers(1, 7)), replace=False).tolist()
        )
        for _ in range(n)
    ]


def assert_engines_identical(data, n_clusters: int, theta: float, **kwargs) -> None:
    flat = RockClustering(
        n_clusters=n_clusters, theta=theta, engine="flat", **kwargs
    ).fit(data).result_
    reference = RockClustering(
        n_clusters=n_clusters, theta=theta, engine="reference", **kwargs
    ).fit(data).result_
    assert flat.merge_history == reference.merge_history
    assert np.array_equal(flat.labels, reference.labels)
    assert flat.clusters == reference.clusters
    assert flat.criterion == reference.criterion
    assert flat.stopped_early == reference.stopped_early
    assert flat.n_clusters == reference.n_clusters


class TestEngineEquivalence:
    @pytest.mark.parametrize("theta", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_transactions_bit_identical(self, theta, seed):
        rng = np.random.default_rng(seed)
        transactions = _random_transactions(rng, n=90, universe=25)
        assert_engines_identical(transactions, n_clusters=5, theta=theta)

    def test_theta_zero_bit_identical(self):
        rng = np.random.default_rng(17)
        transactions = _random_transactions(rng, n=40, universe=10)
        assert_engines_identical(transactions, n_clusters=3, theta=0.0)

    def test_theta_one_bit_identical(self):
        # At theta = 1 only identical transactions are neighbours; distinct
        # sets therefore produce a linkless graph and an early stop.  (Both
        # engines share the seed's limitation that duplicate transactions
        # at theta = 1 make the goodness denominator vanish.)
        transactions = [frozenset({i, i + 1}) for i in range(12)]
        assert_engines_identical(transactions, n_clusters=3, theta=1.0)

    def test_votes_like_bit_identical(self, votes_small):
        assert_engines_identical(votes_small, n_clusters=2, theta=0.73)

    def test_mushroom_like_bit_identical(self):
        dataset = generate_mushroom_like(
            group_sizes_edible=(30, 20, 10),
            group_sizes_poisonous=(25, 15, 10),
            rng=5,
        )
        assert_engines_identical(dataset, n_clusters=6, theta=0.8)

    def test_mutual_funds_like_bit_identical(self):
        _, prices, _ = generate_mutual_funds(n_days=120, rng=3)
        transactions = to_updown_transactions(prices)
        assert_engines_identical(transactions, n_clusters=3, theta=0.6)

    def test_market_baskets_bit_identical(self):
        dataset = generate_market_baskets(n_transactions=150, rng=9)
        assert_engines_identical(dataset.transactions, n_clusters=4, theta=0.5)

    def test_basket_example_bit_identical(self):
        dataset = example_transactions()
        assert_engines_identical(dataset, n_clusters=2, theta=0.5)

    def test_custom_exponent_function_bit_identical(self):
        rng = np.random.default_rng(23)
        transactions = _random_transactions(rng, n=60, universe=15)
        assert_engines_identical(
            transactions,
            n_clusters=4,
            theta=0.5,
            exponent_function=lambda theta: 0.5 * (1.0 - theta),
        )

    def test_empty_transactions_bit_identical(self):
        transactions = [frozenset(), frozenset(), frozenset({1, 2}), frozenset({1, 2, 3})]
        assert_engines_identical(transactions, n_clusters=2, theta=0.5)


class TestFlatEngineBehaviour:
    def test_auto_is_the_default_engine(self):
        assert RockClustering(n_clusters=2).engine == "auto"

    def test_engines_constant(self):
        assert ENGINES == ("flat", "reference", "arena")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            RockClustering(n_clusters=2, engine="warp")

    def test_strict_raises_on_early_stop(self):
        transactions = [{1, 2}, {3, 4}, {5, 6}]
        with pytest.raises(InsufficientLinksError):
            RockClustering(
                n_clusters=1, theta=0.9, engine="flat", strict=True
            ).fit(transactions)

    def test_two_group_recovery(self, two_group_transactions, two_group_labels):
        model = RockClustering(n_clusters=2, theta=0.4, engine="flat")
        model.fit(two_group_transactions)
        assert model.n_clusters_ == 2
        first = model.labels_[:3]
        second = model.labels_[3:]
        assert len(set(first.tolist())) == 1
        assert len(set(second.tolist())) == 1
        assert first[0] != second[0]


class TestFlatAgglomerateFunction:
    @pytest.fixture
    def links(self, two_group_transactions):
        graph = compute_neighbors(two_group_transactions, theta=0.4)
        return links_from_neighbors(graph)

    def test_merges_down_to_requested_count(self, links):
        history, members, stopped_early = flat_agglomerate(links, 6, 2, 0.4)
        assert len(members) == 2
        assert len(history) == 4
        assert not stopped_early
        assert sorted(sorted(points) for points in members.values()) == [
            [0, 1, 2],
            [3, 4, 5],
        ]

    def test_goodness_values_positive_and_recorded(self, links):
        history, _, _ = flat_agglomerate(links, 6, 2, 0.4)
        assert all(step.goodness > 0 for step in history)
        assert [step.step for step in history] == list(range(len(history)))

    def test_empty_links_stops_early(self):
        links = sparse.csr_matrix((4, 4), dtype=np.int64)
        history, members, stopped_early = flat_agglomerate(links, 4, 1, 0.5)
        assert not history
        assert len(members) == 4
        assert stopped_early

    def test_unsorted_and_unsymmetric_input_accepted(self, links):
        # The engine canonicalises its input: shuffle the storage order and
        # keep only the upper triangle; results must not change.
        upper = sparse.triu(links, k=1).tocoo()
        order = np.random.default_rng(0).permutation(upper.nnz)
        scrambled = sparse.coo_matrix(
            (upper.data[order], (upper.row[order], upper.col[order])),
            shape=upper.shape,
        ).tocsr()
        baseline = flat_agglomerate(links, 6, 2, 0.4)
        assert flat_agglomerate(scrambled, 6, 2, 0.4)[0] == baseline[0]

    def test_engine_class_reusable_state(self, links):
        engine = FlatAgglomerationEngine(links, 6, 2, 0.4)
        history, members, stopped_early = engine.run()
        assert len(members) == 2
        assert not stopped_early
        assert len(history) == 4


class TestDegenerateGoodness:
    def test_theta_one_with_duplicates_raises_like_reference(self):
        # f(1.0) == 0 makes every goodness denominator vanish; both engines
        # must refuse identically (the reference raises from goodness()).
        transactions = [frozenset({1, 2}), frozenset({1, 2}), frozenset({3, 4})]
        for engine in ENGINES:
            with pytest.raises(ZeroDivisionError):
                RockClustering(n_clusters=1, theta=1.0, engine=engine).fit(
                    transactions
                )

    def test_negative_goodness_exponent_stops_early_identically(self):
        # A custom exponent function with 1 + 2 f(theta) < 1 makes every
        # denominator negative; the reference stops before the first merge
        # and the flat engine must match.
        transactions = [frozenset({1, 2, 3}), frozenset({1, 2, 4}), frozenset({1, 3, 4})]
        assert_engines_identical(
            transactions,
            n_clusters=1,
            theta=0.4,
            exponent_function=lambda theta: -0.5,
        )
