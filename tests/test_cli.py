"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.data.io import write_categorical_csv, write_transactions
from repro.datasets.market_basket import generate_market_baskets
from repro.datasets.votes import generate_votes_like


@pytest.fixture
def votes_csv(tmp_path):
    votes = generate_votes_like(n_republicans=40, n_democrats=60, rng=7)
    path = tmp_path / "votes.csv"
    write_categorical_csv(votes, path)
    return path


@pytest.fixture
def basket_file(tmp_path):
    baskets = generate_market_baskets(rng=0, n_transactions=80, n_clusters=2)
    path = tmp_path / "baskets.txt"
    write_transactions(baskets, path, label_prefix="class=")
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_requires_clusters(self, votes_csv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", str(votes_csv)])

    def test_parses_full_cluster_invocation(self, votes_csv):
        arguments = build_parser().parse_args(
            ["cluster", str(votes_csv), "--clusters", "2", "--theta", "0.65",
             "--label-column", "0", "--min-cluster-size", "3"]
        )
        assert arguments.clusters == 2
        assert arguments.theta == 0.65


class TestClusterCommand:
    def test_cluster_labeled_csv(self, votes_csv, capsys, tmp_path):
        output = tmp_path / "labels.txt"
        code = main([
            "cluster", str(votes_csv), "--clusters", "2", "--theta", "0.65",
            "--label-column", "0", "--min-cluster-size", "3",
            "--output", str(output),
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "clusters" in captured
        assert "clustering error" in captured
        assert output.is_file()
        labels = output.read_text().split()
        assert len(labels) == 100

    def test_cluster_unlabeled_csv(self, tmp_path, capsys):
        votes = generate_votes_like(n_republicans=20, n_democrats=20, rng=1)
        path = tmp_path / "unlabeled.csv"
        write_categorical_csv(votes, path, include_labels=False)
        code = main(["cluster", str(path), "--clusters", "2", "--theta", "0.6"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Cluster sizes" in captured

    def test_cluster_transactions_file(self, basket_file, capsys):
        code = main([
            "cluster", str(basket_file), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "2", "--theta", "0.2",
            "--min-cluster-size", "3",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Cluster composition" in captured

    def test_missing_file_returns_error_code(self, tmp_path, capsys):
        code = main(["cluster", str(tmp_path / "absent.csv"), "--clusters", "2"])
        assert code == 3
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_datasets_lists_registrations(self, capsys):
        assert main(["datasets"]) == 0
        captured = capsys.readouterr().out
        assert "votes" in captured
        assert "E2-E3" in captured

    def test_experiment_runs_basket_example(self, capsys):
        assert main(["experiment", "E1"]) == 0
        captured = capsys.readouterr().out
        assert "[E1]" in captured
        assert "rock_error" in captured

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "E99"]) == 3
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_command(self, votes_csv, capsys):
        code = main([
            "sweep", str(votes_csv), "--clusters", "2", "--label-column", "0",
            "--thetas", "0.6", "0.7",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "theta sweep" in captured
        assert "recommended theta" in captured


class TestEngineFlag:
    def test_engine_flag_parsed(self, votes_csv):
        arguments = build_parser().parse_args(
            ["cluster", str(votes_csv), "--clusters", "2", "--engine", "reference"]
        )
        assert arguments.engine == "reference"

    def test_engine_defaults_to_auto(self, votes_csv):
        arguments = build_parser().parse_args(
            ["cluster", str(votes_csv), "--clusters", "2"]
        )
        assert arguments.engine == "auto"

    def test_arena_engine_accepted(self, votes_csv):
        arguments = build_parser().parse_args(
            ["cluster", str(votes_csv), "--clusters", "2", "--engine", "arena"]
        )
        assert arguments.engine == "arena"

    def test_unknown_engine_rejected(self, votes_csv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", str(votes_csv), "--clusters", "2", "--engine", "warp"]
            )

    def test_cluster_with_reference_engine_runs(self, basket_file, capsys):
        code = main([
            "cluster", str(basket_file), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "2", "--theta", "0.3",
            "--engine", "reference",
        ])
        assert code == 0
        assert "clusters" in capsys.readouterr().out


class TestNeighborStrategyFlags:
    def test_choices_come_from_the_registry(self):
        # The CLI enumerates the backend registry — no drifting literals.
        from repro.core.neighbors import NEIGHBOR_STRATEGIES

        parser = build_parser()
        for strategy in NEIGHBOR_STRATEGIES:
            arguments = parser.parse_args(
                ["cluster", "x.txt", "--clusters", "2",
                 "--neighbor-strategy", strategy]
            )
            assert arguments.neighbor_strategy == strategy

    def test_defaults(self):
        arguments = build_parser().parse_args(["cluster", "x.txt", "--clusters", "2"])
        assert arguments.neighbor_strategy == "auto"
        assert arguments.neighbor_block_size is None

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "x.txt", "--clusters", "2",
                 "--neighbor-strategy", "warp"]
            )

    def test_blocked_backend_end_to_end(self, basket_file, capsys, tmp_path):
        blocked_out = tmp_path / "blocked.txt"
        auto_out = tmp_path / "auto.txt"
        base = [
            "cluster", str(basket_file), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "2", "--theta", "0.2",
            "--seed", "3",
        ]
        assert main(base + ["--neighbor-strategy", "blocked",
                            "--neighbor-block-size", "16",
                            "--output", str(blocked_out)]) == 0
        assert main(base + ["--output", str(auto_out)]) == 0
        capsys.readouterr()
        assert blocked_out.read_text() == auto_out.read_text()

    def test_streaming_honours_neighbor_strategy(self, tmp_path, capsys):
        baskets = generate_market_baskets(rng=3, n_transactions=120, n_clusters=3)
        path = tmp_path / "big.txt"
        write_transactions(baskets, path, label_prefix="class=")
        code = main([
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "3", "--theta", "0.3",
            "--sample-size", "60", "--stream",
            "--neighbor-strategy", "inverted-index",
        ])
        assert code == 0
        assert "streaming" in capsys.readouterr().out


class TestStreamingCli:
    def test_stream_matches_in_memory_labels(self, tmp_path, capsys):
        # The file carries class labels: --stream must strip them exactly
        # like the in-memory reader does, or the item sets (and labels)
        # silently diverge.
        baskets = generate_market_baskets(rng=3, n_transactions=120, n_clusters=3)
        path = tmp_path / "big.txt"
        write_transactions(baskets, path, label_prefix="class=")
        plain_out = tmp_path / "plain.txt"
        stream_out = tmp_path / "stream.txt"
        base = [
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=",
            "--clusters", "3", "--theta", "0.3", "--sample-size", "60",
            "--seed", "5",
        ]
        assert main(base + ["--output", str(plain_out)]) == 0
        assert main(base + ["--stream", "--batch-size", "32",
                            "--output", str(stream_out)]) == 0
        captured = capsys.readouterr().out
        assert "streaming" in captured
        # Ground-truth evaluation must not silently vanish in streaming mode.
        assert captured.count("Cluster composition") == 2
        assert captured.count("clustering error") == 2
        assert plain_out.read_text() == stream_out.read_text()

    def test_stream_requires_transactions_format(self, votes_csv, capsys):
        code = main([
            "cluster", str(votes_csv), "--clusters", "2", "--stream",
        ])
        assert code == 3
        assert "require --format transactions" in capsys.readouterr().err

    def test_stream_flags_parsed(self, tmp_path):
        arguments = build_parser().parse_args(
            ["cluster", "x.txt", "--format", "transactions", "--clusters", "2",
             "--stream", "--batch-size", "256"]
        )
        assert arguments.stream is True
        assert arguments.batch_size == 256

    def test_stream_requires_sample_size(self, tmp_path, capsys):
        path = tmp_path / "b.txt"
        path.write_text("a b\nc d\n")
        code = main([
            "cluster", str(path), "--format", "transactions",
            "--clusters", "2", "--stream",
        ])
        assert code == 3
        assert "require --sample-size" in capsys.readouterr().err


class TestOnlineCli:
    def _basket_path(self, tmp_path, n=160):
        baskets = generate_market_baskets(rng=3, n_transactions=n, n_clusters=3)
        path = tmp_path / "online.txt"
        write_transactions(baskets, path, label_prefix="class=")
        return path

    def _base(self, path):
        return [
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "3", "--theta", "0.3",
            "--sample-size", "60", "--seed", "5",
        ]

    def test_online_flags_parsed_with_defaults(self):
        arguments = build_parser().parse_args(
            ["cluster", "x.txt", "--format", "transactions", "--clusters", "2"]
        )
        assert arguments.online is False
        assert arguments.refresh_threshold is None

    def test_online_cli_matches_stream_cli(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        online_out = tmp_path / "online_labels.txt"
        stream_out = tmp_path / "stream_labels.txt"
        assert main(self._base(path) + ["--online", "--batch-size", "32",
                                        "--output", str(online_out)]) == 0
        assert main(self._base(path) + ["--stream", "--batch-size", "32",
                                        "--output", str(stream_out)]) == 0
        captured = capsys.readouterr().out
        assert "online" in captured
        assert online_out.read_text() == stream_out.read_text()

    def test_online_with_refresh_threshold_runs(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        code = main(self._base(path) + ["--online", "--batch-size", "16",
                                        "--refresh-threshold", "0.25"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "refreshes" in captured

    # ---- conflicting mode flags ---------------------------------------- #
    def test_online_conflicts_with_stream(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        code = main(self._base(path) + ["--online", "--stream"])
        assert code == 3
        assert "--online conflicts with --stream/--shards" in capsys.readouterr().err

    def test_online_conflicts_with_shards(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        code = main(self._base(path) + ["--online", "--shards", "2"])
        assert code == 3
        assert "--online conflicts with --stream/--shards" in capsys.readouterr().err

    def test_all_three_modes_at_once_rejected(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        code = main(
            self._base(path) + ["--online", "--stream", "--shards", "2"]
        )
        assert code == 3
        assert "pick exactly one" in capsys.readouterr().err

    def test_stream_plus_multi_shards_still_allowed(self, tmp_path, capsys):
        # --stream with --shards N is the historical spelling of the
        # sharded mode (shards imply streaming); it must keep working.
        path = self._basket_path(tmp_path)
        code = main(self._base(path) + ["--stream", "--shards", "2"])
        assert code == 0
        assert "sharded x2" in capsys.readouterr().out

    # ---- invalid --refresh-threshold ----------------------------------- #
    def test_refresh_threshold_without_online_rejected(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        code = main(self._base(path) + ["--refresh-threshold", "0.5"])
        assert code == 3
        assert "--refresh-threshold requires --online" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-0.5", "nan"])
    def test_non_positive_refresh_threshold_rejected(self, tmp_path, capsys, value):
        path = self._basket_path(tmp_path)
        code = main(
            self._base(path) + ["--online", "--refresh-threshold", value]
        )
        assert code == 3
        assert "refresh_threshold must be a positive fraction" in (
            capsys.readouterr().err
        )

    # ---- other online error paths -------------------------------------- #
    def test_online_requires_transactions_format(self, tmp_path, capsys):
        votes = generate_votes_like(n_republicans=20, n_democrats=20, rng=1)
        path = tmp_path / "votes.csv"
        from repro.data.io import write_categorical_csv

        write_categorical_csv(votes, path)
        code = main([
            "cluster", str(path), "--clusters", "2", "--online",
            "--sample-size", "20",
        ])
        assert code == 3
        assert "require --format transactions" in capsys.readouterr().err

    def test_online_requires_sample_size(self, tmp_path, capsys):
        path = tmp_path / "b.txt"
        path.write_text("a b\nc d\n")
        code = main([
            "cluster", str(path), "--format", "transactions",
            "--clusters", "2", "--online",
        ])
        assert code == 3
        assert "require --sample-size" in capsys.readouterr().err

    def test_unknown_neighbor_strategy_lists_the_registry(self, capsys):
        # argparse rejects the value and its message enumerates the live
        # registry choices, so a user sees what is actually available.
        from repro.core.neighbors import NEIGHBOR_STRATEGIES

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "x.txt", "--clusters", "2",
                 "--neighbor-strategy", "warp"]
            )
        message = capsys.readouterr().err
        assert "warp" in message
        for strategy in NEIGHBOR_STRATEGIES:
            assert strategy in message


class TestShardedCli:
    def _basket_path(self, tmp_path, n=240):
        baskets = generate_market_baskets(rng=3, n_transactions=n, n_clusters=3)
        path = tmp_path / "sharded.txt"
        write_transactions(baskets, path, label_prefix="class=")
        return path

    def test_shard_flags_parsed_with_defaults(self):
        arguments = build_parser().parse_args(
            ["cluster", "x.txt", "--format", "transactions", "--clusters", "2"]
        )
        assert arguments.shards == 1
        assert arguments.shard_workers is None
        assert arguments.shard_strategy == "round-robin"
        assert arguments.shard_executor == "thread"
        assert arguments.shard_retries == 1
        assert arguments.merge_fan_in is None

    def test_unknown_shard_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "x.txt", "--format", "transactions",
                 "--clusters", "2", "--shards", "2",
                 "--shard-executor", "fiber"]
            )

    def test_unknown_shard_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "x.txt", "--format", "transactions",
                 "--clusters", "2", "--shards", "2", "--shard-strategy", "warp"]
            )

    def test_sharded_cluster_writes_labels(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        output = tmp_path / "labels.txt"
        code = main([
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "3", "--theta", "0.3",
            "--sample-size", "90", "--seed", "5",
            "--shards", "2", "--shard-workers", "2",
            "--output", str(output),
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "sharded x2" in captured
        assert "Cluster composition" in captured
        assert len(output.read_text().split()) == 240

    def test_mode_line_names_the_executor(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        code = main([
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "3", "--theta", "0.3",
            "--sample-size", "90", "--seed", "5", "--shards", "2",
        ])
        assert code == 0
        assert "sharded x2, thread" in capsys.readouterr().out

    def test_process_executor_cli_matches_thread(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        thread_out = tmp_path / "thread.txt"
        process_out = tmp_path / "process.txt"
        base = [
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "3", "--theta", "0.3",
            "--sample-size", "90", "--seed", "5", "--shards", "2",
            "--shard-workers", "2",
        ]
        assert main(base + ["--shard-executor", "thread",
                            "--output", str(thread_out)]) == 0
        assert main(base + ["--shard-executor", "process",
                            "--output", str(process_out)]) == 0
        assert "sharded x2, process" in capsys.readouterr().out
        assert thread_out.read_text() == process_out.read_text()

    def test_degraded_run_warning_reaches_the_summary(self, tmp_path, capsys):
        # Regression: a shard skipped after exhausted retries used to be
        # visible only as a Python warning; the CLI summary must say so.
        from repro.persistence import failpoints

        path = self._basket_path(tmp_path)
        failpoints.reset()
        try:
            with failpoints.failpoint("shard.worker.1", times=2):
                with pytest.warns(RuntimeWarning):
                    code = main([
                        "cluster", str(path), "--format", "transactions",
                        "--label-prefix", "class=", "--clusters", "3",
                        "--theta", "0.3", "--sample-size", "90", "--seed", "5",
                        "--shards", "2",
                    ])
        finally:
            failpoints.reset()
        captured = capsys.readouterr().out
        assert code == 0
        assert "WARNING: degraded run - 1 shard(s) skipped" in captured
        assert ": 1" in captured

    def test_shard_retries_flag_absorbs_repeated_faults(self, tmp_path, capsys):
        from repro.persistence import failpoints

        path = self._basket_path(tmp_path)
        clean_out = tmp_path / "clean.txt"
        retried_out = tmp_path / "retried.txt"
        base = [
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "3", "--theta", "0.3",
            "--sample-size", "90", "--seed", "5", "--shards", "2",
        ]
        assert main(base + ["--output", str(clean_out)]) == 0
        failpoints.reset()
        try:
            with failpoints.failpoint("shard.worker.1", times=2):
                code = main(base + ["--shard-retries", "2",
                                    "--output", str(retried_out)])
        finally:
            failpoints.reset()
        captured = capsys.readouterr().out
        assert code == 0
        assert "degraded run" not in captured
        assert clean_out.read_text() == retried_out.read_text()

    def test_merge_fan_in_flag_forwarded(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        flat_out = tmp_path / "flat.txt"
        fanned_out = tmp_path / "fanned.txt"
        base = [
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "3", "--theta", "0.3",
            "--sample-size", "90", "--seed", "5", "--shards", "2",
        ]
        assert main(base + ["--output", str(flat_out)]) == 0
        assert main(base + ["--merge-fan-in", "2",
                            "--output", str(fanned_out)]) == 0
        capsys.readouterr()
        # Two shards at fan-in two is a single merge level: bit-identical
        # to the flat merge by contract.
        assert flat_out.read_text() == fanned_out.read_text()

    def test_one_shard_cli_matches_stream_cli(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        stream_out = tmp_path / "stream.txt"
        shard_out = tmp_path / "shard.txt"
        base = [
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "3", "--theta", "0.3",
            "--sample-size", "90", "--seed", "5",
        ]
        assert main(base + ["--stream", "--output", str(stream_out)]) == 0
        assert main(base + ["--shards", "1", "--stream",
                            "--output", str(shard_out)]) == 0
        capsys.readouterr()
        assert stream_out.read_text() == shard_out.read_text()

    def test_zero_shards_rejected_not_silently_in_memory(self, tmp_path, capsys):
        path = self._basket_path(tmp_path, n=40)
        code = main([
            "cluster", str(path), "--format", "transactions",
            "--clusters", "2", "--shards", "0",
        ])
        assert code == 3
        assert "--shards must be at least 1" in capsys.readouterr().err

    def test_sharded_requires_sample_size(self, tmp_path, capsys):
        path = tmp_path / "b.txt"
        path.write_text("a b\nc d\n")
        code = main([
            "cluster", str(path), "--format", "transactions",
            "--clusters", "2", "--shards", "2",
        ])
        assert code == 3
        assert "require --sample-size" in capsys.readouterr().err


class TestExitCodes:
    """Library errors exit 3, argparse usage errors keep exit 2."""

    def test_repro_error_exits_3(self, tmp_path, capsys):
        code = main(["cluster", str(tmp_path / "absent.csv"), "--clusters", "2"])
        assert code == 3
        message = capsys.readouterr().err
        assert message.startswith("error:")
        assert message.count("\n") == 1  # one-line message, no traceback

    def test_argparse_error_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cluster", "x.txt"])  # missing required --clusters
        assert excinfo.value.code == 2


class TestSnapshotCli:
    def _basket_path(self, tmp_path, n=160):
        baskets = generate_market_baskets(rng=3, n_transactions=n, n_clusters=3)
        path = tmp_path / "online.txt"
        write_transactions(baskets, path, label_prefix="class=")
        return path

    def _base(self, path):
        return [
            "cluster", str(path), "--format", "transactions",
            "--label-prefix", "class=", "--clusters", "3", "--theta", "0.3",
            "--sample-size", "60", "--seed", "5", "--online",
            "--batch-size", "32",
        ]

    def test_snapshot_flags_parsed_with_defaults(self):
        arguments = build_parser().parse_args(
            ["cluster", "x.txt", "--format", "transactions", "--clusters", "2"]
        )
        assert arguments.snapshot_dir is None
        assert arguments.snapshot_every is None
        assert arguments.resume is False

    @pytest.mark.parametrize("flags", [
        ["--snapshot-dir", "snaps"],
        ["--snapshot-every", "2"],
        ["--resume"],
    ])
    def test_snapshot_flags_require_online(self, tmp_path, capsys, flags):
        path = self._basket_path(tmp_path, n=40)
        base = [
            "cluster", str(path), "--format", "transactions",
            "--clusters", "2", "--sample-size", "20",
        ]
        code = main(base + flags)
        assert code == 3
        assert "require --online" in capsys.readouterr().err

    def test_snapshot_run_matches_plain_online_run(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        plain_out = tmp_path / "plain.txt"
        snap_out = tmp_path / "snap.txt"
        assert main(self._base(path) + ["--output", str(plain_out)]) == 0
        assert main(self._base(path) + [
            "--snapshot-dir", str(tmp_path / "snaps"), "--snapshot-every", "1",
            "--output", str(snap_out),
        ]) == 0
        capsys.readouterr()
        assert plain_out.read_text() == snap_out.read_text()
        assert (tmp_path / "snaps" / "CURRENT").is_file()

    def test_resume_of_finished_run_reproduces_labels(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        first_out = tmp_path / "first.txt"
        resumed_out = tmp_path / "resumed.txt"
        snaps = str(tmp_path / "snaps")
        assert main(self._base(path) + [
            "--snapshot-dir", snaps, "--output", str(first_out),
        ]) == 0
        assert main(self._base(path) + [
            "--snapshot-dir", snaps, "--resume", "--output", str(resumed_out),
        ]) == 0
        capsys.readouterr()
        assert first_out.read_text() == resumed_out.read_text()

    def test_resume_without_checkpoint_falls_back_to_fresh_run(
        self, tmp_path, capsys
    ):
        path = self._basket_path(tmp_path)
        code = main(self._base(path) + [
            "--snapshot-dir", str(tmp_path / "empty"), "--resume",
        ])
        assert code == 0
        assert "online" in capsys.readouterr().out

    def test_resume_with_mismatched_theta_exits_3(self, tmp_path, capsys):
        path = self._basket_path(tmp_path)
        snaps = str(tmp_path / "snaps")
        assert main(self._base(path) + ["--snapshot-dir", snaps]) == 0
        capsys.readouterr()
        mismatched = [
            argument if argument != "0.3" else "0.4"
            for argument in self._base(path)
        ]
        code = main(mismatched + ["--snapshot-dir", snaps, "--resume"])
        assert code == 3
        assert "different session configuration" in capsys.readouterr().err


class TestServeCli:
    """Flag surface of the ``serve`` subcommand.

    The end-to-end socket round trip (spawn, drive, --resume) lives in
    ``tests/test_serve.py::TestServeCliEndToEnd``; these tests cover the
    parser and validation paths, which never bind a socket.
    """

    def _base(self, path):
        return [
            "serve", str(path), "--clusters", "2", "--theta", "0.3",
            "--sample-size", "40", "--label-prefix", "class=",
        ]

    def test_flags_parsed_with_defaults(self, basket_file):
        arguments = build_parser().parse_args(self._base(basket_file))
        assert arguments.clusters == 2
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 0
        assert arguments.batch_size == 1024
        assert arguments.snapshot_dir is None
        assert arguments.snapshot_every is None
        assert arguments.max_live_points is None
        assert arguments.resume is False
        assert arguments.refresh_threshold is None

    @pytest.mark.parametrize("port", ["-1", "65536"])
    def test_port_out_of_range_exits_3(self, basket_file, capsys, port):
        code = main(self._base(basket_file) + ["--port", port])
        assert code == 3
        assert "--port must lie in [0, 65535]" in capsys.readouterr().err

    def test_snapshot_every_requires_snapshot_dir(self, basket_file, capsys):
        code = main(self._base(basket_file) + ["--snapshot-every", "4"])
        assert code == 3
        assert "--snapshot-every requires --snapshot-dir" in capsys.readouterr().err

    def test_resume_requires_snapshot_dir(self, basket_file, capsys):
        code = main(self._base(basket_file) + ["--resume"])
        assert code == 3
        assert "--resume requires --snapshot-dir" in capsys.readouterr().err

    def test_max_live_points_must_be_positive(self, basket_file, capsys):
        code = main(self._base(basket_file) + ["--max-live-points", "0"])
        assert code == 3
        assert "--max-live-points must be at least 1" in capsys.readouterr().err

    def test_sample_size_required(self, basket_file, capsys):
        code = main(["serve", str(basket_file), "--clusters", "2"])
        assert code == 3
        assert "serve requires --sample-size" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", [["--stream"], ["--shards", "2"], ["--online"]])
    def test_batch_mode_flags_rejected_by_parser(self, basket_file, flag):
        # serve IS the online mode; the batch-mode switches of `cluster`
        # do not exist on this subparser, so argparse exits 2.
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(self._base(basket_file) + flag)
        assert excinfo.value.code == 2

    def test_help_names_the_serving_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        for flag in (
            "--host", "--port", "--snapshot-dir", "--snapshot-every",
            "--max-live-points", "--resume", "--refresh-threshold",
        ):
            assert flag in text
