"""Tests for the repro.timeseries subpackage."""

import numpy as np
import pytest

from repro.datasets.mutual_funds import FundFamily, generate_mutual_funds
from repro.errors import ConfigurationError, DataValidationError
from repro.timeseries.categorize import Direction, daily_directions, to_updown_transactions
from repro.timeseries.funds import cluster_funds


class TestDailyDirections:
    def test_up_down_classification(self):
        directions = daily_directions([1.0, 2.0, 1.5, 1.5])
        assert directions == [Direction.UP, Direction.DOWN, Direction.FLAT]

    def test_flat_tolerance(self):
        directions = daily_directions([100.0, 100.4, 99.0], flat_tolerance=0.005)
        assert directions == [Direction.FLAT, Direction.DOWN]

    def test_zero_previous_price_handled(self):
        assert daily_directions([0.0, 1.0]) == [Direction.UP]

    def test_too_short_series_rejected(self):
        with pytest.raises(DataValidationError):
            daily_directions([1.0])

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            daily_directions([1.0, 2.0], flat_tolerance=-0.1)


class TestToUpdownTransactions:
    def test_items_are_day_direction_pairs(self):
        prices = np.array([[1.0, 2.0, 1.0], [2.0, 1.0, 3.0]])
        transactions = to_updown_transactions(prices)
        assert transactions.transaction(0) == frozenset({(0, "Up"), (1, "Down")})
        assert transactions.transaction(1) == frozenset({(0, "Down"), (1, "Up")})

    def test_flat_days_skipped_by_default(self):
        prices = np.array([[1.0, 1.0, 2.0]])
        transactions = to_updown_transactions(prices)
        assert transactions.transaction(0) == frozenset({(1, "Up")})

    def test_flat_days_included_when_requested(self):
        prices = np.array([[1.0, 1.0, 2.0]])
        transactions = to_updown_transactions(prices, include_flat=True)
        assert (0, "Flat") in transactions.transaction(0)

    def test_labels_carried(self):
        prices = np.array([[1.0, 2.0], [2.0, 1.0]])
        transactions = to_updown_transactions(prices, labels=["a", "b"])
        assert transactions.labels == ["a", "b"]

    def test_identical_series_get_identical_transactions(self):
        prices = np.array([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0]])
        transactions = to_updown_transactions(prices)
        assert transactions.transaction(0) == transactions.transaction(1)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DataValidationError):
            to_updown_transactions(np.array([1.0, 2.0]))
        with pytest.raises(DataValidationError):
            to_updown_transactions(np.array([[1.0], [2.0]]))
        with pytest.raises(DataValidationError):
            to_updown_transactions(np.array([[1.0, 2.0]]), series_names=["a", "b"])


class TestClusterFunds:
    @pytest.fixture(scope="class")
    def small_fund_universe(self):
        families = (
            FundFamily("bond", n_funds=6, volatility=0.004, idiosyncratic=0.001),
            FundFamily("equity", n_funds=6, volatility=0.012, idiosyncratic=0.003),
            FundFamily("metals", n_funds=5, volatility=0.02, idiosyncratic=0.005),
        )
        return generate_mutual_funds(families=families, n_days=250, rng=0)

    def test_families_cocluster(self, small_fund_universe):
        names, prices, families = small_fund_universe
        result = cluster_funds(prices, names, families=families, n_clusters=3, theta=0.7)
        assert result.n_clusters >= 2
        # Every cluster should be dominated by a single family.
        for counter in result.family_composition:
            if counter:
                dominant = counter.most_common(1)[0][1]
                assert dominant / sum(counter.values()) >= 0.8

    def test_cluster_names_align_with_labels(self, small_fund_universe):
        names, prices, families = small_fund_universe
        result = cluster_funds(prices, names, families=families, n_clusters=3, theta=0.7)
        flattened = [name for cluster in result.clusters for name in cluster]
        labeled = [
            names[i]
            for i, label in enumerate(result.pipeline_result.labels)
            if label >= 0
        ]
        assert sorted(flattened) == sorted(labeled)

    def test_dominant_families_reported(self, small_fund_universe):
        names, prices, families = small_fund_universe
        result = cluster_funds(prices, names, families=families, n_clusters=3, theta=0.7)
        assert len(result.dominant_families()) == result.n_clusters

    def test_without_family_labels(self, small_fund_universe):
        names, prices, _ = small_fund_universe
        result = cluster_funds(prices, names, n_clusters=3, theta=0.7)
        assert all(not counter for counter in result.family_composition)

    def test_name_length_mismatch_rejected(self, small_fund_universe):
        _, prices, _ = small_fund_universe
        with pytest.raises(DataValidationError):
            cluster_funds(prices, ["just-one-name"], n_clusters=2)
