"""Tests for repro.core.sampling, repro.core.labeling and repro.core.outliers."""

import math

import numpy as np
import pytest

from repro.core.labeling import (
    LabelingResult,
    StreamingLabeler,
    StreamingLabelingResult,
    label_points,
    label_points_streaming,
    select_labeling_fractions,
)
from repro.core.neighbors import compute_neighbors
from repro.core.outliers import (
    drop_small_clusters,
    isolated_point_mask,
    partition_isolated_points,
    relabel_after_dropping,
)
from repro.core.sampling import (
    chernoff_sample_size,
    draw_sample,
    reservoir_sample,
    split_dataset,
)
from repro.errors import ConfigurationError, DataValidationError


class TestChernoffSampleSize:
    def test_matches_closed_form(self):
        n, u, f, delta = 10_000, 500, 0.1, 0.01
        log_term = math.log(1 / delta)
        expected = (
            f * n
            + (n / u) * log_term
            + (n / u) * math.sqrt(log_term ** 2 + 2 * f * u * log_term)
        )
        assert chernoff_sample_size(n, u, f, delta) == math.ceil(expected)

    def test_capped_at_population_size(self):
        assert chernoff_sample_size(100, 5, fraction=0.9, delta=0.001) <= 100

    def test_smaller_clusters_need_bigger_samples(self):
        big = chernoff_sample_size(10_000, 2_000)
        small = chernoff_sample_size(10_000, 100)
        assert small > big

    def test_lower_delta_needs_bigger_samples(self):
        lax = chernoff_sample_size(10_000, 500, delta=0.1)
        strict = chernoff_sample_size(10_000, 500, delta=0.001)
        assert strict > lax

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            chernoff_sample_size(0, 1)
        with pytest.raises(ConfigurationError):
            chernoff_sample_size(10, 20)
        with pytest.raises(ConfigurationError):
            chernoff_sample_size(10, 5, fraction=0.0)
        with pytest.raises(ConfigurationError):
            chernoff_sample_size(10, 5, delta=1.5)


class TestDrawSample:
    def test_partition_of_indices(self):
        sample, remainder = draw_sample(list(range(50)), 20, rng=0)
        assert len(sample) == 20
        assert len(remainder) == 30
        assert sorted(sample + remainder) == list(range(50))

    def test_reproducible_with_seed(self):
        first, _ = draw_sample(list(range(100)), 10, rng=5)
        second, _ = draw_sample(list(range(100)), 10, rng=5)
        assert first == second

    def test_full_sample(self):
        sample, remainder = draw_sample(list(range(10)), 10, rng=0)
        assert sample == list(range(10))
        assert remainder == []

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            draw_sample(list(range(5)), 0)
        with pytest.raises(ConfigurationError):
            draw_sample(list(range(5)), 6)

    def test_split_dataset(self, small_transaction_dataset):
        sample_idx, rest_idx = draw_sample(small_transaction_dataset, 4, rng=1)
        sample, rest = split_dataset(small_transaction_dataset, sample_idx, rest_idx)
        assert sample.n_transactions == 4
        assert rest.n_transactions == 2

    def test_split_dataset_full_sample_gives_none_remainder(self, small_transaction_dataset):
        sample, rest = split_dataset(
            small_transaction_dataset, list(range(6)), []
        )
        assert rest is None
        assert sample.n_transactions == 6

    def test_split_dataset_rejects_plain_lists(self):
        with pytest.raises(ConfigurationError):
            split_dataset([{1}, {2}], [0], [1])


class TestLabeling:
    @pytest.fixture
    def sample_clusters(self, two_group_transactions):
        # The first two of each triple form the clustered "sample".
        sample = [
            two_group_transactions[0],
            two_group_transactions[1],
            two_group_transactions[3],
            two_group_transactions[4],
        ]
        clusters = [[0, 1], [2, 3]]
        return sample, clusters

    def test_unlabeled_points_join_their_group(self, two_group_transactions, sample_clusters):
        sample, clusters = sample_clusters
        unlabeled = [two_group_transactions[2], two_group_transactions[5]]
        result = label_points(unlabeled, sample, clusters, theta=0.4)
        assert isinstance(result, LabelingResult)
        assert result.labels.tolist() == [0, 1]
        assert result.n_outliers == 0

    def test_point_with_no_neighbors_is_outlier(self, sample_clusters):
        sample, clusters = sample_clusters
        result = label_points([frozenset({99, 100})], sample, clusters, theta=0.4)
        assert result.labels.tolist() == [-1]
        assert result.n_outliers == 1

    def test_neighbor_counts_shape(self, two_group_transactions, sample_clusters):
        sample, clusters = sample_clusters
        unlabeled = [two_group_transactions[2], two_group_transactions[5], frozenset({42})]
        result = label_points(unlabeled, sample, clusters, theta=0.4)
        assert result.neighbor_counts.shape == (3, 2)

    def test_empty_unlabeled_is_fine(self, sample_clusters):
        sample, clusters = sample_clusters
        result = label_points([], sample, clusters, theta=0.4)
        assert result.labels.size == 0
        assert result.n_outliers == 0

    def test_normalisation_prefers_smaller_cluster_on_equal_counts(self):
        # One neighbour in a tiny cluster outweighs one neighbour in a huge
        # cluster because of the (n + 1) ** f(theta) normaliser.
        sample = [frozenset({1, 2})] + [frozenset({5, 6})] + [frozenset({50, 60})] * 8
        clusters = [[0], list(range(1, 10))]
        point = frozenset({1, 2, 5, 6})
        result = label_points([point], sample, clusters, theta=0.4)
        assert result.neighbor_counts[0, 0] == 1
        assert result.neighbor_counts[0, 1] == 1
        assert result.labels[0] == 0

    def test_requires_clusters(self, sample_clusters):
        sample, _ = sample_clusters
        with pytest.raises(DataValidationError):
            label_points([frozenset({1})], sample, [], theta=0.5)

    def test_invalid_theta_rejected(self, sample_clusters):
        sample, clusters = sample_clusters
        with pytest.raises(ConfigurationError):
            label_points([], sample, clusters, theta=2.0)

    def test_labeling_fraction_selection(self):
        clusters = [list(range(10)), list(range(10, 14))]
        fractions = select_labeling_fractions(clusters, fraction=0.5, rng=0)
        assert len(fractions[0]) == 5
        assert len(fractions[1]) == 2
        assert set(fractions[0]) <= set(clusters[0])

    def test_labeling_fraction_keeps_at_least_one(self):
        fractions = select_labeling_fractions([[3]], fraction=0.01, rng=0)
        assert fractions == [[3]]

    def test_labeling_fraction_invalid(self):
        with pytest.raises(ConfigurationError):
            select_labeling_fractions([[1]], fraction=0.0)


class TestOutliers:
    def test_isolated_point_mask(self):
        graph = compute_neighbors([{1, 2}, {1, 2, 3}, {9}], theta=0.5)
        mask = isolated_point_mask(graph, min_neighbors=1)
        assert mask.tolist() == [False, False, True]

    def test_partition_isolated_points(self):
        graph = compute_neighbors([{1, 2}, {1, 2, 3}, {9}], theta=0.5)
        participating, isolated = partition_isolated_points(graph)
        assert participating == [0, 1]
        assert isolated == [2]

    def test_min_neighbors_zero_keeps_everything(self):
        graph = compute_neighbors([{1}, {2}, {3}], theta=0.5)
        participating, isolated = partition_isolated_points(graph, min_neighbors=0)
        assert participating == [0, 1, 2]
        assert isolated == []

    def test_negative_min_neighbors_rejected(self):
        graph = compute_neighbors([{1}, {2}], theta=0.5)
        with pytest.raises(ConfigurationError):
            isolated_point_mask(graph, min_neighbors=-1)

    def test_drop_small_clusters(self):
        clusters = [(0, 1, 2, 3), (4, 5), (6,)]
        kept, outliers = drop_small_clusters(clusters, min_size=2)
        assert kept == [(0, 1, 2, 3), (4, 5)]
        assert outliers == [6]

    def test_drop_small_clusters_min_one_keeps_all(self):
        clusters = [(0,), (1, 2)]
        kept, outliers = drop_small_clusters(clusters, min_size=1)
        assert kept == [(0,), (1, 2)]
        assert outliers == []

    def test_drop_small_clusters_invalid_min(self):
        with pytest.raises(ConfigurationError):
            drop_small_clusters([(0,)], min_size=0)

    def test_relabel_after_dropping(self):
        labels = relabel_after_dropping(5, [(0, 2), (4,)])
        assert labels.tolist() == [0, -1, 0, -1, 1]


class TestLabelingStrategies:
    def _random_setup(self, seed):
        rng = np.random.default_rng(seed)
        universe = 20
        make = lambda: frozenset(
            rng.choice(universe, size=int(rng.integers(1, 7)), replace=False).tolist()
        )
        sample = [make() for _ in range(40)] + [frozenset()]
        unlabeled = [make() for _ in range(25)] + [frozenset(), frozenset({99})]
        clusters = [list(range(0, 14)), list(range(14, 28)), list(range(28, 41))]
        return unlabeled, sample, clusters

    @pytest.mark.parametrize("theta", [0.0, 0.3, 0.5, 0.8, 1.0])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sparse_matches_bruteforce(self, theta, seed):
        unlabeled, sample, clusters = self._random_setup(seed)
        sparse_result = label_points(
            unlabeled, sample, clusters, theta=theta, strategy="sparse-matmul", rng=7
        )
        brute_result = label_points(
            unlabeled, sample, clusters, theta=theta, strategy="bruteforce", rng=7
        )
        assert np.array_equal(sparse_result.labels, brute_result.labels)
        assert np.array_equal(
            sparse_result.neighbor_counts, brute_result.neighbor_counts
        )
        assert sparse_result.n_outliers == brute_result.n_outliers

    def test_sparse_matches_bruteforce_with_fraction(self):
        unlabeled, sample, clusters = self._random_setup(4)
        kwargs = dict(theta=0.4, labeling_fraction=0.5)
        sparse_result = label_points(
            unlabeled, sample, clusters, strategy="sparse-matmul", rng=11, **kwargs
        )
        brute_result = label_points(
            unlabeled, sample, clusters, strategy="bruteforce", rng=11, **kwargs
        )
        assert np.array_equal(sparse_result.labels, brute_result.labels)
        assert np.array_equal(
            sparse_result.neighbor_counts, brute_result.neighbor_counts
        )

    @pytest.mark.parametrize("theta", [0.0, 0.3, 0.6, 1.0])
    def test_sparse_matches_bruteforce_beyond_jaccard(self, theta):
        # The sparse path keys on the vectorized-counts capability, so the
        # other set measures get the fast path too — counts included.
        from repro.similarity.jaccard import (
            DiceSimilarity,
            OverlapCoefficientSimilarity,
            SetCosineSimilarity,
        )

        unlabeled, sample, clusters = self._random_setup(5)
        for measure in (DiceSimilarity(), OverlapCoefficientSimilarity(),
                        SetCosineSimilarity()):
            sparse_result = label_points(
                unlabeled, sample, clusters, theta=theta, measure=measure,
                strategy="sparse-matmul", rng=9,
            )
            brute_result = label_points(
                unlabeled, sample, clusters, theta=theta, measure=measure,
                strategy="bruteforce", rng=9,
            )
            assert np.array_equal(sparse_result.labels, brute_result.labels), measure.name
            assert np.array_equal(
                sparse_result.neighbor_counts, brute_result.neighbor_counts
            ), measure.name

    def test_auto_uses_sparse_for_vectorizable_measures(self):
        from repro.similarity.jaccard import DiceSimilarity

        unlabeled, sample, clusters = self._random_setup(5)
        result = label_points(
            unlabeled, sample, clusters, theta=0.4, measure=DiceSimilarity(), rng=0
        )
        assert result.neighbor_counts.shape == (len(unlabeled), len(clusters))

    def test_sparse_with_non_vectorizable_rejected(self):
        from repro.similarity.overlap import SimpleMatchingSimilarity

        unlabeled, sample, clusters = self._random_setup(6)
        with pytest.raises(ConfigurationError):
            label_points(
                unlabeled, sample, clusters, theta=0.4,
                measure=SimpleMatchingSimilarity(n_attributes=20),
                strategy="sparse-matmul",
            )

    def test_unknown_strategy_rejected(self):
        unlabeled, sample, clusters = self._random_setup(7)
        with pytest.raises(ConfigurationError):
            label_points(unlabeled, sample, clusters, theta=0.4, strategy="quantum")

    def test_shared_item_index_gives_same_result(self):
        from repro.data.encoding import build_item_index

        unlabeled, sample, clusters = self._random_setup(8)
        item_index = build_item_index(list(unlabeled) + list(sample))
        with_index = label_points(
            unlabeled, sample, clusters, theta=0.5,
            strategy="sparse-matmul", item_index=item_index, rng=3,
        )
        without_index = label_points(
            unlabeled, sample, clusters, theta=0.5, strategy="sparse-matmul", rng=3
        )
        assert np.array_equal(with_index.labels, without_index.labels)
        assert np.array_equal(
            with_index.neighbor_counts, without_index.neighbor_counts
        )


class TestReservoirSample:
    def test_partition_properties(self):
        indices, elements, n_total = reservoir_sample(iter(range(100, 150)), 12, rng=0)
        assert n_total == 50
        assert len(indices) == len(elements) == 12
        assert indices == sorted(indices)
        assert len(set(indices)) == 12
        assert all(elements[i] == 100 + indices[i] for i in range(12))

    def test_short_stream_returns_everything(self):
        indices, elements, n_total = reservoir_sample(iter("abc"), 10, rng=0)
        assert indices == [0, 1, 2]
        assert elements == ["a", "b", "c"]
        assert n_total == 3

    def test_reproducible_with_seed(self):
        first = reservoir_sample(iter(range(200)), 20, rng=5)
        second = reservoir_sample(iter(range(200)), 20, rng=5)
        assert first == second

    def test_roughly_uniform(self):
        # Every position should be sampled with probability k/n; check the
        # first and last decile are both represented over many draws.
        hits = np.zeros(100)
        for seed in range(200):
            indices, _, _ = reservoir_sample(iter(range(100)), 10, rng=seed)
            hits[indices] += 1
        assert hits.min() > 0
        assert hits[:10].sum() / hits.sum() == pytest.approx(0.1, abs=0.05)
        assert hits[90:].sum() / hits.sum() == pytest.approx(0.1, abs=0.05)

    def test_empty_stream(self):
        indices, elements, n_total = reservoir_sample(iter([]), 5, rng=0)
        assert indices == [] and elements == [] and n_total == 0

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ConfigurationError):
            reservoir_sample(iter(range(5)), 0)


class TestStreamingLabeler:
    def _setup(self, seed=0, n_unlabeled=30):
        rng = np.random.default_rng(seed)
        make = lambda: frozenset(
            rng.choice(18, size=int(rng.integers(1, 7)), replace=False).tolist()
        )
        sample = [make() for _ in range(30)]
        unlabeled = [make() for _ in range(n_unlabeled)]
        clusters = [list(range(0, 10)), list(range(10, 20)), list(range(20, 30))]
        return unlabeled, sample, clusters

    @pytest.mark.parametrize("batch_size", [1, 7, 30, 100])
    @pytest.mark.parametrize("theta", [0.0, 0.4, 1.0])
    def test_streaming_matches_one_shot(self, batch_size, theta):
        unlabeled, sample, clusters = self._setup()
        batches = [
            unlabeled[i:i + batch_size] for i in range(0, len(unlabeled), batch_size)
        ]
        streamed = label_points_streaming(
            batches, sample, clusters, theta=theta, rng=3
        )
        one_shot = label_points(unlabeled, sample, clusters, theta=theta, rng=3)
        assert isinstance(streamed, StreamingLabelingResult)
        assert streamed.n_batches == len(batches)
        assert streamed.n_points == len(unlabeled)
        assert np.array_equal(streamed.merged.labels, one_shot.labels)
        assert np.array_equal(
            streamed.merged.neighbor_counts, one_shot.neighbor_counts
        )
        assert streamed.merged.n_outliers == one_shot.n_outliers

    def test_per_batch_results_partition_the_merged(self):
        unlabeled, sample, clusters = self._setup()
        batches = [unlabeled[:12], unlabeled[12:20], unlabeled[20:]]
        streamed = label_points_streaming(batches, sample, clusters, theta=0.4, rng=1)
        assert [len(r.labels) for r in streamed.batch_results] == [12, 8, 10]
        assert np.array_equal(
            np.concatenate([r.labels for r in streamed.batch_results]),
            streamed.merged.labels,
        )

    def test_retained_incidence_built_exactly_once(self, monkeypatch):
        import repro.core.labeling as labeling_module

        unlabeled, sample, clusters = self._setup()
        calls = []
        original = labeling_module.transactions_to_incidence

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(labeling_module, "transactions_to_incidence", counting)
        batches = [unlabeled[i:i + 5] for i in range(0, len(unlabeled), 5)]
        label_points_streaming(
            batches, sample, clusters, theta=0.4, strategy="sparse-matmul", rng=0
        )
        # One incidence for the retained fractions, one per batch — never a
        # retained-side rebuild inside the loop.
        assert len(calls) == 1 + len(batches)

    def test_no_batches_yields_empty_merged(self):
        _, sample, clusters = self._setup()
        streamed = label_points_streaming([], sample, clusters, theta=0.4, rng=0)
        assert streamed.n_batches == 0
        assert streamed.merged.labels.size == 0
        assert streamed.merged.neighbor_counts.shape == (0, len(clusters))

    def test_batch_with_unknown_items_matches_bruteforce(self):
        # Streaming batches may hold items the sample never saw; the sparse
        # path must ignore them for intersections while still counting them
        # in the Jaccard union (true set size).
        sample = [frozenset({1, 2}), frozenset({1, 3}), frozenset({8, 9})]
        clusters = [[0, 1], [2]]
        batch = [frozenset({1, 2, 777}), frozenset({555, 666})]
        labeler = StreamingLabeler(sample, clusters, theta=0.4, strategy="sparse-matmul")
        sparse_result = labeler.label_batch(batch)
        brute_result = label_points(
            batch, sample, clusters, theta=0.4, strategy="bruteforce"
        )
        assert np.array_equal(
            sparse_result.neighbor_counts, brute_result.neighbor_counts
        )
        assert np.array_equal(sparse_result.labels, brute_result.labels)

    def test_assign_outliers_false_joins_largest_cluster(self):
        sample = [frozenset({1, 2}), frozenset({1, 3}), frozenset({1, 4}), frozenset({8, 9})]
        clusters = [[3], [0, 1, 2]]  # cluster 1 is the largest
        stray = frozenset({500, 501})
        kept = label_points([stray], sample, clusters, theta=0.5)
        forced = label_points(
            [stray], sample, clusters, theta=0.5, assign_outliers=False
        )
        assert kept.labels.tolist() == [-1]
        assert kept.n_outliers == 1
        assert forced.labels.tolist() == [1]
        assert forced.n_outliers == 0

    def test_assign_outliers_false_keeps_neighbor_based_labels(self):
        # Only no-neighbour points are affected by the flag.
        sample = [frozenset({1, 2}), frozenset({8, 9})]
        clusters = [[0], [1]]
        points = [frozenset({8, 9}), frozenset({700})]
        forced = label_points(
            points, sample, clusters, theta=0.5, assign_outliers=False
        )
        assert forced.labels.tolist()[0] == 1
        assert forced.labels.tolist()[1] in (0, 1)
        assert forced.n_outliers == 0


class TestLabelingParityProperties:
    """Property-style parity pins: sparse and brute force must agree on
    counts, labels and outliers across theta extremes, empty-set
    transactions and sub-unit labelling fractions."""

    def _setup(self, seed):
        rng = np.random.default_rng(seed)
        make = lambda: frozenset(
            rng.choice(15, size=int(rng.integers(1, 6)), replace=False).tolist()
        )
        # Empty sets on both sides, plus a two-point cluster so tiny
        # fractions exercise the max(1, ...) retention guard.
        sample = [make() for _ in range(20)] + [frozenset(), frozenset()]
        unlabeled = [make() for _ in range(15)] + [frozenset(), frozenset({999})]
        clusters = [[0, 21], [1, 2, 3, 20], list(range(4, 20))]
        return unlabeled, sample, clusters

    @pytest.mark.parametrize("theta", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("fraction", [0.01, 0.4, 1.0])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_count_parity(self, theta, fraction, seed):
        unlabeled, sample, clusters = self._setup(seed)
        kwargs = dict(theta=theta, labeling_fraction=fraction, rng=99)
        sparse_result = label_points(
            unlabeled, sample, clusters, strategy="sparse-matmul", **kwargs
        )
        brute_result = label_points(
            unlabeled, sample, clusters, strategy="bruteforce", **kwargs
        )
        assert np.array_equal(
            sparse_result.neighbor_counts, brute_result.neighbor_counts
        )
        assert np.array_equal(sparse_result.labels, brute_result.labels)
        assert sparse_result.n_outliers == brute_result.n_outliers

    @pytest.mark.parametrize("theta", [0.0, 0.5, 1.0])
    def test_two_point_cluster_tiny_fraction(self, theta):
        # fraction * 2 rounds to zero; the guard must retain one point and
        # both strategies must count against the identical retained set.
        sample = [frozenset({1}), frozenset({1, 2})]
        clusters = [[0, 1]]
        fractions = select_labeling_fractions(clusters, fraction=0.01, rng=5)
        assert len(fractions[0]) == 1
        kwargs = dict(theta=theta, labeling_fraction=0.01, rng=5)
        sparse_result = label_points(
            [frozenset({1})], sample, clusters, strategy="sparse-matmul", **kwargs
        )
        brute_result = label_points(
            [frozenset({1})], sample, clusters, strategy="bruteforce", **kwargs
        )
        assert np.array_equal(
            sparse_result.neighbor_counts, brute_result.neighbor_counts
        )

    def test_empty_sets_against_empty_retained(self):
        # Jaccard(∅, ∅) = 1 must count as a neighbour for any theta in both
        # strategies, including the theta = 0 shortcut.
        sample = [frozenset(), frozenset({1, 2})]
        clusters = [[0], [1]]
        for theta in (0.0, 0.5, 1.0):
            for strategy in ("sparse-matmul", "bruteforce"):
                result = label_points(
                    [frozenset()], sample, clusters, theta=theta, strategy=strategy
                )
                assert result.neighbor_counts[0, 0] == 1.0
                assert result.neighbor_counts[0, 1] == (1.0 if theta == 0.0 else 0.0)
                assert result.labels[0] == 0
