"""Tests for repro.data.missing."""

import pytest

from repro.data.dataset import CategoricalDataset
from repro.data.missing import (
    MISSING_CATEGORY,
    MissingValuePolicy,
    apply_missing_policy,
    count_missing,
)
from repro.errors import MissingValueError


@pytest.fixture
def dataset_with_missing():
    return CategoricalDataset(
        [("a", None), ("a", "x"), (None, "x"), ("b", "y")],
        labels=[1, 1, 2, 2],
    )


class TestCountMissing:
    def test_counts_cells(self, dataset_with_missing):
        assert count_missing(dataset_with_missing) == 2

    def test_zero_when_complete(self):
        assert count_missing(CategoricalDataset([("a", "b")])) == 0


class TestPolicies:
    def test_ignore_returns_same_object(self, dataset_with_missing):
        assert apply_missing_policy(dataset_with_missing, "ignore") is dataset_with_missing

    def test_forbid_raises_on_missing(self, dataset_with_missing):
        with pytest.raises(MissingValueError):
            apply_missing_policy(dataset_with_missing, MissingValuePolicy.FORBID)

    def test_forbid_passes_complete_data(self):
        ds = CategoricalDataset([("a", "b")])
        assert apply_missing_policy(ds, "forbid") is ds

    def test_as_category_replaces_none(self, dataset_with_missing):
        converted = apply_missing_policy(dataset_with_missing, "as-category")
        assert converted.record(0) == ("a", MISSING_CATEGORY)
        assert converted.record(2) == (MISSING_CATEGORY, "x")
        assert count_missing(converted) == 0
        assert converted.labels == dataset_with_missing.labels

    def test_impute_mode_uses_most_frequent_value(self, dataset_with_missing):
        converted = apply_missing_policy(dataset_with_missing, "impute-mode")
        # Column 0 mode is "a" (2 occurrences), column 1 mode is "x".
        assert converted.record(2) == ("a", "x")
        assert converted.record(0) == ("a", "x")
        assert count_missing(converted) == 0

    def test_impute_mode_all_missing_column_uses_sentinel(self):
        ds = CategoricalDataset([(None, "a"), (None, "b")])
        converted = apply_missing_policy(ds, "impute-mode")
        assert converted.record(0)[0] == MISSING_CATEGORY

    def test_policy_accepts_enum_and_string(self, dataset_with_missing):
        by_enum = apply_missing_policy(dataset_with_missing, MissingValuePolicy.AS_CATEGORY)
        by_string = apply_missing_policy(dataset_with_missing, "as-category")
        assert by_enum.records == by_string.records

    def test_unknown_policy_raises(self, dataset_with_missing):
        with pytest.raises(ValueError):
            apply_missing_policy(dataset_with_missing, "bogus")
