"""Tests for repro.data.io (round-trips through temporary files)."""

import pytest

from repro.data.io import (
    read_categorical_csv,
    read_transactions,
    write_categorical_csv,
    write_transactions,
)
from repro.errors import DataValidationError, DatasetUnavailableError


class TestCategoricalCsv:
    def test_roundtrip_with_labels_and_missing(self, tmp_path, small_categorical_dataset):
        path = tmp_path / "data.csv"
        write_categorical_csv(small_categorical_dataset, path)
        loaded = read_categorical_csv(
            path, label_column=0, attribute_names=["v1", "v2", "v3"]
        )
        assert loaded.records == small_categorical_dataset.records
        assert loaded.labels == small_categorical_dataset.labels

    def test_read_without_labels(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("a,b\nc,d\n")
        loaded = read_categorical_csv(path)
        assert loaded.n_records == 2
        assert loaded.labels is None

    def test_missing_token_becomes_none(self, tmp_path):
        path = tmp_path / "missing.csv"
        path.write_text("a,?\n?,b\n")
        loaded = read_categorical_csv(path)
        assert loaded.record(0) == ("a", None)
        assert loaded.record(1) == (None, "b")

    def test_header_supplies_attribute_names(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("class,color,size\nr,red,big\nd,blue,small\n")
        loaded = read_categorical_csv(path, label_column=0, has_header=True)
        assert loaded.attribute_names == ("color", "size")
        assert loaded.labels == ["r", "d"]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("a,b\n\n\nc,d\n")
        assert read_categorical_csv(path).n_records == 2

    def test_negative_label_column(self, tmp_path):
        path = tmp_path / "tail-label.csv"
        path.write_text("red,big,r\nblue,small,d\n")
        loaded = read_categorical_csv(path, label_column=-1)
        assert loaded.labels == ["r", "d"]
        assert loaded.record(0) == ("red", "big")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetUnavailableError):
            read_categorical_csv(tmp_path / "absent.csv")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("\n\n")
        with pytest.raises(DataValidationError):
            read_categorical_csv(path)

    def test_writer_creates_parent_directories(self, tmp_path, small_categorical_dataset):
        path = tmp_path / "deep" / "nested" / "out.csv"
        written = write_categorical_csv(small_categorical_dataset, path)
        assert written.is_file()


class TestTransactionIo:
    def test_roundtrip_with_labels(self, tmp_path, small_transaction_dataset):
        path = tmp_path / "trans.txt"
        write_transactions(small_transaction_dataset, path, label_prefix="class=")
        loaded = read_transactions(path, label_prefix="class=")
        assert loaded.labels == small_transaction_dataset.labels
        # Items are written as strings, so compare stringified sets.
        expected = [frozenset(map(str, t)) for t in small_transaction_dataset]
        assert loaded.transactions == expected

    def test_read_whitespace_delimited(self, tmp_path):
        path = tmp_path / "basket.txt"
        path.write_text("milk bread\nbeer chips salsa\n")
        loaded = read_transactions(path)
        assert loaded.n_transactions == 2
        assert loaded.transaction(1) == frozenset({"beer", "chips", "salsa"})

    def test_read_custom_delimiter(self, tmp_path):
        path = tmp_path / "basket.csv"
        path.write_text("milk,bread\nbeer,chips\n")
        loaded = read_transactions(path, delimiter=",")
        assert loaded.transaction(0) == frozenset({"milk", "bread"})

    def test_no_labels_when_prefix_absent(self, tmp_path):
        path = tmp_path / "basket.txt"
        path.write_text("a b\nc d\n")
        assert read_transactions(path, label_prefix="class=").labels is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetUnavailableError):
            read_transactions(tmp_path / "absent.txt")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("   \n")
        with pytest.raises(DataValidationError):
            read_transactions(path)


class TestIterTransactions:
    def test_roundtrip_against_write_transactions(self, tmp_path, small_transaction_dataset):
        from repro.data.io import iter_transactions

        path = tmp_path / "stream.txt"
        write_transactions(small_transaction_dataset, path)
        streamed = [t for batch in iter_transactions(path, batch_size=2) for t in batch]
        expected = [frozenset(map(str, t)) for t in small_transaction_dataset]
        assert streamed == expected

    def test_matches_read_transactions(self, tmp_path):
        from repro.data.io import iter_transactions

        path = tmp_path / "basket.txt"
        path.write_text("milk bread\n\nbeer chips salsa\nmilk\n")
        loaded = read_transactions(path)
        streamed = [t for batch in iter_transactions(path, batch_size=1) for t in batch]
        assert streamed == loaded.transactions

    def test_batch_sizes(self, tmp_path):
        from repro.data.io import iter_transactions

        path = tmp_path / "basket.txt"
        path.write_text("".join("item%d\n" % i for i in range(10)))
        batches = list(iter_transactions(path, batch_size=4))
        assert [len(b) for b in batches] == [4, 4, 2]
        batches = list(iter_transactions(path, batch_size=100))
        assert [len(b) for b in batches] == [10]

    def test_label_prefix_stripped(self, tmp_path):
        from repro.data.io import iter_transactions

        path = tmp_path / "labeled.txt"
        path.write_text("a b class=x\nc class=y\n")
        batches = list(iter_transactions(path, batch_size=10, label_prefix="class="))
        assert batches == [[frozenset({"a", "b"}), frozenset({"c"})]]

    def test_custom_delimiter(self, tmp_path):
        from repro.data.io import iter_transactions

        path = tmp_path / "basket.csv"
        path.write_text("milk,bread\nbeer,chips\n")
        batches = list(iter_transactions(path, batch_size=10, delimiter=","))
        assert batches[0][0] == frozenset({"milk", "bread"})

    def test_empty_file_yields_nothing(self, tmp_path):
        from repro.data.io import iter_transactions

        path = tmp_path / "empty.txt"
        path.write_text("  \n\n")
        assert list(iter_transactions(path)) == []

    def test_missing_file_raises(self, tmp_path):
        from repro.data.io import iter_transactions

        with pytest.raises(DatasetUnavailableError):
            list(iter_transactions(tmp_path / "absent.txt"))

    def test_invalid_batch_size_rejected(self, tmp_path):
        from repro.data.io import iter_transactions
        from repro.errors import ConfigurationError

        path = tmp_path / "basket.txt"
        path.write_text("a b\n")
        with pytest.raises(ConfigurationError):
            list(iter_transactions(path, batch_size=0))


class TestReadTransactionLabels:
    def test_collects_labels_in_file_order(self, tmp_path):
        from repro.data.io import read_transaction_labels

        path = tmp_path / "labeled.txt"
        path.write_text("a b class=x\nc d\ne class=y\n")
        labels = read_transaction_labels(path, label_prefix="class=")
        assert labels == ["x", None, "y"]

    def test_matches_read_transactions_labels(self, tmp_path, small_transaction_dataset):
        from repro.data.io import read_transaction_labels

        path = tmp_path / "trans.txt"
        write_transactions(small_transaction_dataset, path, label_prefix="class=")
        labels = read_transaction_labels(path, label_prefix="class=")
        assert labels == read_transactions(path, label_prefix="class=").labels
