"""Tests for the repro.bench experiment harness (small, fast configurations)."""

import pytest

from repro.bench.experiments import (
    run_basket_example,
    run_funds_experiment,
    run_mushroom_experiment,
    run_votes_experiment,
)
from repro.bench.harness import (
    ExperimentRecord,
    available_experiments,
    get_experiment,
    register_experiment,
)
from repro.bench.scalability import ScalabilityPoint, run_scalability_sweep
from repro.errors import ConfigurationError


class TestHarness:
    def test_all_paper_experiments_registered(self):
        registered = available_experiments()
        for experiment_id in ("E1", "E2-E3", "E4-E5", "E6", "E7"):
            assert experiment_id in registered

    def test_get_experiment_returns_callable(self):
        assert callable(get_experiment("E1"))

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e1") is get_experiment("E1")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("E99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_experiment("E1", lambda: None)

    def test_record_render_contains_sections(self):
        record = ExperimentRecord(
            experiment_id="X1",
            title="demo",
            parameters={"theta": 0.5},
            metrics={"error": 0.25, "count": 3},
            tables={"main": "a | b"},
            series={"line": [(1, 2.0)]},
            notes=["remark"],
        )
        text = record.render()
        assert "[X1] demo" in text
        assert "theta" in text
        assert "error = 0.2500" in text
        assert "count = 3" in text
        assert "a | b" in text
        assert "series line:" in text
        assert "note: remark" in text


class TestBasketExperiment:
    def test_rock_separates_example_perfectly(self):
        record = run_basket_example()
        assert record.metrics["rock_error"] == 0.0
        assert record.metrics["rock_error"] <= record.metrics["traditional_error"]
        assert "rock" in record.tables and "traditional" in record.tables


class TestVotesExperiment:
    @pytest.fixture(scope="class")
    def record(self):
        return run_votes_experiment(rng=0, include_kmodes=False)

    def test_rock_beats_traditional(self, record):
        assert record.metrics["rock_error"] < record.metrics["traditional_error"]

    def test_rock_error_is_low(self, record):
        assert record.metrics["rock_error"] < 0.2

    def test_tables_present(self, record):
        assert "ROCK" in record.tables["rock"]
        assert "republican" in record.tables["rock"]


class TestMushroomExperiment:
    @pytest.fixture(scope="class")
    def record(self):
        # A very small scale keeps the test fast while preserving the shape.
        return run_mushroom_experiment(scale=0.03, rng=0)

    def test_rock_clusters_are_almost_all_pure(self, record):
        pure = record.metrics["rock_pure_clusters"]
        total = record.metrics["rock_n_clusters"]
        assert pure >= total - 2

    def test_rock_error_small(self, record):
        assert record.metrics["rock_error"] < 0.1

    def test_rock_at_least_as_pure_as_traditional(self, record):
        rock_share = record.metrics["rock_pure_clusters"] / max(record.metrics["rock_n_clusters"], 1)
        traditional_share = record.metrics["traditional_pure_clusters"] / max(
            record.metrics["traditional_n_clusters"], 1
        )
        assert rock_share >= traditional_share - 1e-9

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mushroom_experiment(scale=0.0)


class TestFundsExperiment:
    def test_families_cocluster(self):
        record = run_funds_experiment(n_days=200, rng=0)
        assert record.metrics["purity_vs_family"] > 0.9
        assert "funds" in record.tables


class TestScalability:
    def test_sweep_grid_size(self, mushroom_small):
        dataset, _ = mushroom_small
        points = run_scalability_sweep(
            data=dataset, sample_sizes=(40, 80), thetas=(0.7, 0.8), n_clusters=8, rng=0
        )
        assert len(points) == 4
        assert all(isinstance(point, ScalabilityPoint) for point in points)
        assert all(point.seconds >= 0 for point in points)

    def test_larger_samples_take_longer(self, mushroom_small):
        dataset, _ = mushroom_small
        points = run_scalability_sweep(
            data=dataset, sample_sizes=(30, 150), thetas=(0.8,), n_clusters=8, rng=0
        )
        by_size = {point.sample_size: point.seconds for point in points}
        assert by_size[150] > by_size[30]

    def test_sample_larger_than_data_rejected(self, mushroom_small):
        dataset, _ = mushroom_small
        with pytest.raises(ConfigurationError):
            run_scalability_sweep(data=dataset, sample_sizes=(10_000,), thetas=(0.8,))

    def test_empty_grid_rejected(self, mushroom_small):
        dataset, _ = mushroom_small
        with pytest.raises(ConfigurationError):
            run_scalability_sweep(data=dataset, sample_sizes=(), thetas=(0.8,))
