"""Tests for repro.core.heaps.AddressableMaxHeap."""

import numpy as np
import pytest

from repro.core.heaps import AddressableMaxHeap
from repro.errors import ConfigurationError


class TestBasicOperations:
    def test_push_peek_pop(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 3.0)
        heap.push("c", 2.0)
        assert heap.peek() == ("b", 3.0)
        assert heap.pop() == ("b", 3.0)
        assert heap.pop() == ("c", 2.0)
        assert heap.pop() == ("a", 1.0)
        assert len(heap) == 0

    def test_len_contains_bool(self):
        heap = AddressableMaxHeap()
        assert not heap
        heap.push(1, 5.0)
        assert heap
        assert 1 in heap
        assert 2 not in heap
        assert len(heap) == 1

    def test_duplicate_push_rejected(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        with pytest.raises(ConfigurationError):
            heap.push("a", 2.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableMaxHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableMaxHeap().peek()

    def test_priority_of(self):
        heap = AddressableMaxHeap()
        heap.push("a", 4.5)
        assert heap.priority_of("a") == 4.5
        with pytest.raises(KeyError):
            heap.priority_of("missing")

    def test_clear(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.clear()
        assert len(heap) == 0
        assert "a" not in heap


class TestUpdateAndDelete:
    def test_update_increases_priority(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.update("a", 10.0)
        assert heap.peek() == ("a", 10.0)

    def test_update_decreases_priority(self):
        heap = AddressableMaxHeap()
        heap.push("a", 10.0)
        heap.push("b", 2.0)
        heap.update("a", 1.0)
        assert heap.peek() == ("b", 2.0)

    def test_update_missing_key_raises(self):
        with pytest.raises(KeyError):
            AddressableMaxHeap().update("a", 1.0)

    def test_push_or_update(self):
        heap = AddressableMaxHeap()
        heap.push_or_update("a", 1.0)
        heap.push_or_update("a", 5.0)
        assert len(heap) == 1
        assert heap.peek() == ("a", 5.0)

    def test_delete_returns_priority(self):
        heap = AddressableMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert heap.delete("a") == 1.0
        assert "a" not in heap
        assert heap.pop() == ("b", 2.0)

    def test_delete_missing_raises_discard_does_not(self):
        heap = AddressableMaxHeap()
        with pytest.raises(KeyError):
            heap.delete("a")
        heap.discard("a")  # no exception

    def test_delete_root(self):
        heap = AddressableMaxHeap()
        for key, priority in (("a", 5.0), ("b", 3.0), ("c", 4.0)):
            heap.push(key, priority)
        heap.delete("a")
        assert heap.peek() == ("c", 4.0)


class TestOrderingInvariants:
    def test_items_sorted_by_priority(self):
        heap = AddressableMaxHeap()
        for key, priority in (("a", 2.0), ("b", 5.0), ("c", 3.0)):
            heap.push(key, priority)
        assert heap.items() == [("b", 5.0), ("c", 3.0), ("a", 2.0)]

    def test_ties_broken_by_insertion_order(self):
        heap = AddressableMaxHeap()
        heap.push("first", 1.0)
        heap.push("second", 1.0)
        heap.push("third", 1.0)
        assert heap.pop()[0] == "first"
        assert heap.pop()[0] == "second"
        assert heap.pop()[0] == "third"

    def test_pops_always_non_increasing_random(self):
        rng = np.random.default_rng(42)
        heap = AddressableMaxHeap()
        for key in range(300):
            heap.push(key, float(rng.normal()))
        # Interleave updates and deletions.
        for key in range(0, 300, 7):
            heap.update(key, float(rng.normal()))
        for key in range(0, 300, 13):
            heap.discard(key)
        values = []
        while heap:
            values.append(heap.pop()[1])
        assert values == sorted(values, reverse=True)

    def test_matches_reference_sort(self):
        rng = np.random.default_rng(7)
        priorities = {i: float(rng.uniform(-10, 10)) for i in range(100)}
        heap = AddressableMaxHeap()
        for key, priority in priorities.items():
            heap.push(key, priority)
        expected = sorted(priorities, key=lambda k: -priorities[k])
        drained = [heap.pop()[0] for _ in range(len(priorities))]
        assert drained == expected

    def test_iteration_yields_all_keys(self):
        heap = AddressableMaxHeap()
        for key in "abcde":
            heap.push(key, ord(key))
        assert sorted(heap) == list("abcde")
